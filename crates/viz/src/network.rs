//! Place-graph network rendering — the per-user "graph of visited
//! places" view.
//!
//! Nodes are laid out on a circle (stable, dependency-free, and readable
//! for the ≤ a-few-dozen places a user visits); node radius scales with
//! visit count and edge width with transition count.

use crate::svg::Document;
use crowdweb_mobility::PlaceGraph;
use crowdweb_prep::PlaceLabel;
use std::collections::HashMap;
use std::f64::consts::TAU;

/// Renders a user's place graph as an SVG network diagram. `name_of`
/// supplies human-readable node names.
///
/// # Examples
///
/// ```
/// use crowdweb_mobility::PlaceGraph;
/// use crowdweb_prep::{PlaceLabel, SeqItem, TimeSlot};
/// use crowdweb_dataset::UserId;
/// use crowdweb_viz::render_place_graph;
///
/// let item = |s: u8, l: u32| SeqItem { slot: TimeSlot(s), label: PlaceLabel(l) };
/// let graph = PlaceGraph::from_sequences(
///     UserId::new(1),
///     &[vec![item(3, 0), item(6, 1)]],
/// );
/// let svg = render_place_graph(&graph, |l| format!("place {}", l.0));
/// assert!(svg.contains("place 0"));
/// ```
pub fn render_place_graph<F>(graph: &PlaceGraph, name_of: F) -> String
where
    F: Fn(PlaceLabel) -> String,
{
    const SIZE: f64 = 560.0;
    const RADIUS: f64 = 200.0;
    let mut doc = Document::new(SIZE, SIZE);
    doc.rect(0.0, 0.0, SIZE, SIZE, "#ffffff", None);
    doc.text_centered(
        SIZE / 2.0,
        24.0,
        14.0,
        "#111111",
        &format!("Places of {}", graph.user()),
    );

    let nodes = graph.nodes();
    if nodes.is_empty() {
        doc.text_centered(SIZE / 2.0, SIZE / 2.0, 12.0, "#666666", "(no places)");
        return doc.finish();
    }
    let center = SIZE / 2.0;
    let positions: HashMap<PlaceLabel, (f64, f64)> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let angle = TAU * i as f64 / nodes.len() as f64 - TAU / 4.0;
            (
                n.label,
                (center + RADIUS * angle.cos(), center + RADIUS * angle.sin()),
            )
        })
        .collect();

    let max_edge = graph
        .edges()
        .iter()
        .map(|e| e.count)
        .max()
        .unwrap_or(1)
        .max(1);
    for e in graph.edges() {
        let (x1, y1) = positions[&e.from];
        let (x2, y2) = positions[&e.to];
        let w = 0.8 + 3.2 * e.count as f64 / max_edge as f64;
        doc.line(x1, y1, x2, y2, "#9db4c8", w);
    }

    let max_visits = nodes.iter().map(|n| n.visits).max().unwrap_or(1).max(1);
    for n in &nodes {
        let (x, y) = positions[&n.label];
        let r = 8.0 + 14.0 * n.visits as f64 / max_visits as f64;
        doc.circle(x, y, r, "#1f77b4");
        doc.text_centered(x, y + 3.0, 9.0, "#ffffff", &n.visits.to_string());
        let label_y = if y < center {
            y - r - 6.0
        } else {
            y + r + 14.0
        };
        doc.text_centered(x, label_y, 10.0, "#333333", &name_of(n.label));
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_dataset::UserId;
    use crowdweb_prep::{SeqItem, TimeSlot};

    fn item(slot: u8, label: u32) -> SeqItem {
        SeqItem {
            slot: TimeSlot(slot),
            label: PlaceLabel(label),
        }
    }

    #[test]
    fn renders_nodes_and_edges() {
        let g = PlaceGraph::from_sequences(
            UserId::new(2),
            &[
                vec![item(3, 0), item(6, 1), item(11, 0)],
                vec![item(3, 0), item(6, 2)],
            ],
        );
        let svg = render_place_graph(&g, |l| format!("P{}", l.0));
        assert!(svg.contains("Places of u2"));
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.matches("<line").count() >= 3);
        assert!(svg.contains("P0") && svg.contains("P1") && svg.contains("P2"));
    }

    #[test]
    fn empty_graph_renders_placeholder() {
        let g = PlaceGraph::from_sequences(UserId::new(1), &[]);
        let svg = render_place_graph(&g, |l| l.to_string());
        assert!(svg.contains("(no places)"));
    }

    #[test]
    fn heavier_edges_are_wider() {
        let g = PlaceGraph::from_sequences(
            UserId::new(1),
            &[
                vec![item(1, 0), item(2, 1)],
                vec![item(1, 0), item(2, 1)],
                vec![item(1, 0), item(2, 2)],
            ],
        );
        let svg = render_place_graph(&g, |l| l.to_string());
        // Edge 0->1 (count 2) gets max width 4.0; edge 0->2 (count 1)
        // gets 0.8 + 1.6 = 2.4.
        assert!(svg.contains("stroke-width=\"4.00\""));
        assert!(svg.contains("stroke-width=\"2.40\""));
    }
}
