//! Crowd flow maps: arrows between microcells showing how the crowd
//! relocates between two time windows (the dynamic behind the paper's
//! Figure 3 → Figure 4 transition).

use crate::svg::Document;
use crowdweb_crowd::CrowdFlow;
use crowdweb_geo::MicrocellGrid;

/// Renders inter-window crowd flows over the city grid. Self-flows
/// (users staying in their cell) render as circles; movements as lines
/// with arrowheads, width proportional to the flow size.
///
/// # Examples
///
/// ```
/// use crowdweb_crowd::CrowdFlow;
/// use crowdweb_geo::{BoundingBox, CellId, MicrocellGrid};
/// use crowdweb_viz::flowmap::render_flow_map;
///
/// # fn main() -> Result<(), crowdweb_geo::GeoError> {
/// let grid = MicrocellGrid::new(BoundingBox::NYC, 10, 10)?;
/// let flows = vec![CrowdFlow { from: CellId(0), to: CellId(55), count: 3 }];
/// let svg = render_flow_map(&grid, &flows, "9 am to 10 am");
/// assert!(svg.contains("<line"));
/// # Ok(())
/// # }
/// ```
pub fn render_flow_map(grid: &MicrocellGrid, flows: &[CrowdFlow], title: &str) -> String {
    const WIDTH: f64 = 720.0;
    let bounds = grid.bounds();
    let height = WIDTH * bounds.height_m() / bounds.width_m().max(1.0);
    let mut doc = Document::new(WIDTH, height);
    doc.rect(0.0, 0.0, WIDTH, height, "#f4f6f8", None);
    doc.text(10.0, 20.0, 14.0, "#111111", &format!("Crowd flows {title}"));

    let project = |cell: crowdweb_geo::CellId| -> Option<(f64, f64)> {
        let center = grid.cell_center(cell)?;
        let x = (center.lon() - bounds.west()) / bounds.lon_span() * WIDTH;
        let y = (1.0 - (center.lat() - bounds.south()) / bounds.lat_span()) * height;
        Some((x, y))
    };

    // Light grid backdrop.
    let cell_w = WIDTH / f64::from(grid.cols());
    let cell_h = height / f64::from(grid.rows());
    for r in 0..=grid.rows() {
        doc.line(
            0.0,
            f64::from(r) * cell_h,
            WIDTH,
            f64::from(r) * cell_h,
            "#e3e8ed",
            0.4,
        );
    }
    for c in 0..=grid.cols() {
        doc.line(
            f64::from(c) * cell_w,
            0.0,
            f64::from(c) * cell_w,
            height,
            "#e3e8ed",
            0.4,
        );
    }

    let max = flows.iter().map(|f| f.count).max().unwrap_or(1).max(1);
    for flow in flows {
        let (Some((x1, y1)), Some((x2, y2))) = (project(flow.from), project(flow.to)) else {
            continue;
        };
        let strength = flow.count as f64 / max as f64;
        if flow.from == flow.to {
            // Staying put: a hollow circle sized by the count.
            doc.circle(x1, y1, 3.0 + 6.0 * strength, "#9db4c8");
            continue;
        }
        let width = 1.0 + 3.5 * strength;
        doc.line(x1, y1, x2, y2, "#d62728", width);
        // Arrowhead: two short strokes at the destination.
        let angle = (y2 - y1).atan2(x2 - x1);
        const HEAD: f64 = 9.0;
        for offset in [-0.5f64, 0.5] {
            let a = angle + std::f64::consts::PI + offset;
            doc.line(
                x2,
                y2,
                x2 + HEAD * a.cos(),
                y2 + HEAD * a.sin(),
                "#d62728",
                width,
            );
        }
        // Count label at the midpoint for big flows.
        if flow.count > 1 {
            doc.text_centered(
                (x1 + x2) / 2.0,
                (y1 + y2) / 2.0 - 4.0,
                9.0,
                "#7a1415",
                &flow.count.to_string(),
            );
        }
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_geo::{BoundingBox, CellId};

    fn grid() -> MicrocellGrid {
        MicrocellGrid::new(BoundingBox::NYC, 8, 8).unwrap()
    }

    #[test]
    fn movement_flows_draw_arrows() {
        let flows = vec![
            CrowdFlow {
                from: CellId(0),
                to: CellId(63),
                count: 4,
            },
            CrowdFlow {
                from: CellId(10),
                to: CellId(12),
                count: 1,
            },
        ];
        let svg = render_flow_map(&grid(), &flows, "test");
        // Backdrop lines + 2 flow lines + 4 arrowhead strokes.
        assert!(svg.matches("<line").count() >= 18 + 6);
        // Big flow gets a count label.
        assert!(svg.contains(">4</text>"));
    }

    #[test]
    fn self_flows_draw_circles() {
        let flows = vec![CrowdFlow {
            from: CellId(5),
            to: CellId(5),
            count: 3,
        }];
        let svg = render_flow_map(&grid(), &flows, "stay");
        assert_eq!(svg.matches("<circle").count(), 1);
    }

    #[test]
    fn invalid_cells_are_skipped() {
        let flows = vec![CrowdFlow {
            from: CellId(9999),
            to: CellId(0),
            count: 2,
        }];
        let svg = render_flow_map(&grid(), &flows, "bad");
        assert!(svg.starts_with("<svg"));
        assert!(!svg.contains(">2<"));
    }

    #[test]
    fn empty_flows_render_backdrop_only() {
        let svg = render_flow_map(&grid(), &[], "empty");
        assert!(svg.contains("Crowd flows empty"));
        assert_eq!(svg.matches("<circle").count(), 0);
    }
}
