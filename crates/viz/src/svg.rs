//! A minimal SVG document builder.
//!
//! Only what the CrowdWeb views need: rects, circles, lines, polylines,
//! text, and groups, with correct XML escaping. The builder produces a
//! self-contained `<svg>` string.

use std::fmt::Write as _;

/// Escapes a string for inclusion in XML text or attribute values.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// An SVG document under construction.
///
/// # Examples
///
/// ```
/// use crowdweb_viz::Document;
///
/// let mut doc = Document::new(100.0, 50.0);
/// doc.rect(0.0, 0.0, 100.0, 50.0, "#ffffff", None);
/// doc.text(10.0, 25.0, 12.0, "#000000", "hello & goodbye");
/// let svg = doc.finish();
/// assert!(svg.contains("hello &amp; goodbye"));
/// ```
#[derive(Debug, Clone)]
pub struct Document {
    width: f64,
    height: f64,
    body: String,
}

impl Document {
    /// Creates an empty document of the given pixel size.
    pub fn new(width: f64, height: f64) -> Document {
        Document {
            width,
            height,
            body: String::new(),
        }
    }

    /// Document width in pixels.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height in pixels.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Adds a filled rectangle; `stroke` optionally draws a border as
    /// `(color, width)`.
    pub fn rect(
        &mut self,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
        fill: &str,
        stroke: Option<(&str, f64)>,
    ) {
        let _ = write!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{}""#,
            escape(fill)
        );
        if let Some((color, sw)) = stroke {
            let _ = write!(
                self.body,
                r#" stroke="{}" stroke-width="{sw:.2}""#,
                escape(color)
            );
        }
        self.body.push_str("/>\n");
    }

    /// Adds a filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{}"/>"#,
            escape(fill)
        );
    }

    /// Adds a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, color: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{}" stroke-width="{width:.2}"/>"#,
            escape(color)
        );
    }

    /// Adds an unfilled polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], color: &str, width: f64) {
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="{width:.2}"/>"#,
            pts.join(" "),
            escape(color)
        );
    }

    /// Adds left-anchored text.
    pub fn text(&mut self, x: f64, y: f64, size: f64, color: &str, content: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" fill="{}">{}</text>"#,
            escape(color),
            escape(content)
        );
    }

    /// Adds centre-anchored text.
    pub fn text_centered(&mut self, x: f64, y: f64, size: f64, color: &str, content: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" fill="{}" text-anchor="middle">{}</text>"#,
            escape(color),
            escape(content)
        );
    }

    /// Adds raw, pre-escaped SVG markup (for composing sub-documents).
    pub fn raw(&mut self, markup: &str) {
        self.body.push_str(markup);
        self.body.push('\n');
    }

    /// Finishes the document, returning the full `<svg>` string.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a&b<c>\"d'"), "a&amp;b&lt;c&gt;&quot;d&apos;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn document_structure() {
        let mut doc = Document::new(200.0, 100.0);
        doc.rect(1.0, 2.0, 3.0, 4.0, "#fff", Some(("#000", 1.0)));
        doc.circle(5.0, 6.0, 7.0, "red");
        doc.line(0.0, 0.0, 10.0, 10.0, "blue", 2.0);
        doc.polyline(&[(0.0, 0.0), (5.0, 5.0)], "green", 1.5);
        doc.text(1.0, 1.0, 10.0, "#333", "label");
        doc.text_centered(2.0, 2.0, 10.0, "#333", "mid");
        let svg = doc.finish();
        assert!(svg.starts_with("<svg xmlns"));
        assert!(svg.trim_end().ends_with("</svg>"));
        for tag in ["<rect", "<circle", "<line", "<polyline", "<text"] {
            assert!(svg.contains(tag), "missing {tag}");
        }
        assert!(svg.contains("text-anchor=\"middle\""));
        assert!(svg.contains("stroke-width=\"1.00\""));
    }

    #[test]
    fn text_is_escaped() {
        let mut doc = Document::new(10.0, 10.0);
        doc.text(0.0, 0.0, 8.0, "#000", "<script>");
        let svg = doc.finish();
        assert!(!svg.contains("<script>"));
        assert!(svg.contains("&lt;script&gt;"));
    }

    #[test]
    fn dimensions_accessible() {
        let doc = Document::new(31.0, 17.0);
        assert_eq!(doc.width(), 31.0);
        assert_eq!(doc.height(), 17.0);
    }

    #[test]
    fn raw_passes_through() {
        let mut doc = Document::new(10.0, 10.0);
        doc.raw("<g id=\"x\"></g>");
        assert!(doc.finish().contains("<g id=\"x\"></g>"));
    }
}
