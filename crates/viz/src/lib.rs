//! Visualization layer: server-side SVG rendering and GeoJSON export.
//!
//! The original CrowdWeb front-end is a browser app; this crate renders
//! the same views as standalone SVG documents and standard GeoJSON so
//! any client (including the embedded web UI in `crowdweb-server`) can
//! display them:
//!
//! - [`svg`] — a small, dependency-free SVG document builder.
//! - [`chart`] — line charts and histograms, used to regenerate the
//!   paper's Figures 5–8.
//! - [`map`] — the city view: microcell heat grid plus hotspot markers
//!   for a crowd snapshot (Figures 3–4).
//! - [`network`] — a user's place graph as a circular-layout network
//!   diagram.
//! - [`export`] — GeoJSON export of crowd snapshots and venues.
//! - [`color`] — sequential color scales.
//!
//! # Examples
//!
//! ```
//! use crowdweb_viz::chart::LineChart;
//!
//! let svg = LineChart::new("Sequences vs support")
//!     .x_label("min_support")
//!     .y_label("sequences per user")
//!     .series("modified PrefixSpan", &[(0.25, 40.0), (0.5, 12.0), (0.75, 3.0)])
//!     .render();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("min_support"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod color;
pub mod export;
pub mod flowmap;
pub mod map;
pub mod network;
pub mod svg;
pub mod timeline;

pub use chart::{Histogram, LineChart};
pub use color::{lerp_color, sequential_color, Rgb};
pub use export::{snapshot_to_geojson, venues_to_geojson};
pub use flowmap::render_flow_map;
pub use map::CityMap;
pub use network::render_place_graph;
pub use svg::Document;
pub use timeline::{render_activity_heatmap, render_crowd_timeline};
