//! Rectangular geographic extents.

use crate::{GeoError, LatLon};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned geographic bounding box.
///
/// Invariant: `south < north` and `west < east` (boxes never cross the
/// antimeridian; city-scale extents never need to).
///
/// # Examples
///
/// ```
/// use crowdweb_geo::{BoundingBox, LatLon};
///
/// let nyc = BoundingBox::NYC;
/// let times_square = LatLon::new(40.7580, -73.9855).unwrap();
/// assert!(nyc.contains(times_square));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    south: f64,
    north: f64,
    west: f64,
    east: f64,
}

impl BoundingBox {
    /// The New York City extent used by the paper's Foursquare NYC dataset
    /// (all five boroughs with a small margin).
    pub const NYC: BoundingBox = BoundingBox {
        south: 40.49,
        north: 40.92,
        west: -74.27,
        east: -73.68,
    };

    /// Creates a bounding box from its four edges, in degrees.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyBounds`] if `south >= north` or
    /// `west >= east`, and the latitude/longitude validity errors of
    /// [`LatLon::new`] if any edge is out of range.
    pub fn new(south: f64, north: f64, west: f64, east: f64) -> Result<Self, GeoError> {
        // Validate the corners via LatLon so range checks live in one place.
        LatLon::new(south, west)?;
        LatLon::new(north, east)?;
        if south >= north || west >= east {
            return Err(GeoError::EmptyBounds {
                south,
                north,
                west,
                east,
            });
        }
        Ok(BoundingBox {
            south,
            north,
            west,
            east,
        })
    }

    /// Smallest box containing every point in `points`, or `None` if the
    /// iterator is empty or degenerate (all points on one line are padded
    /// by a tiny epsilon so the result is a valid, non-empty box).
    pub fn enclosing<I: IntoIterator<Item = LatLon>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let (mut s, mut n, mut w, mut e) = (first.lat(), first.lat(), first.lon(), first.lon());
        for pt in it {
            s = s.min(pt.lat());
            n = n.max(pt.lat());
            w = w.min(pt.lon());
            e = e.max(pt.lon());
        }
        const EPS: f64 = 1e-9;
        if n - s < EPS {
            s -= EPS;
            n += EPS;
        }
        if e - w < EPS {
            w -= EPS;
            e += EPS;
        }
        BoundingBox::new(s.max(-90.0), n.min(90.0), w.max(-180.0), e.min(180.0)).ok()
    }

    /// Southern edge latitude in degrees.
    pub fn south(&self) -> f64 {
        self.south
    }

    /// Northern edge latitude in degrees.
    pub fn north(&self) -> f64 {
        self.north
    }

    /// Western edge longitude in degrees.
    pub fn west(&self) -> f64 {
        self.west
    }

    /// Eastern edge longitude in degrees.
    pub fn east(&self) -> f64 {
        self.east
    }

    /// Latitude span (`north - south`) in degrees; always positive.
    pub fn lat_span(&self) -> f64 {
        self.north - self.south
    }

    /// Longitude span (`east - west`) in degrees; always positive.
    pub fn lon_span(&self) -> f64 {
        self.east - self.west
    }

    /// Geometric center of the box.
    pub fn center(&self) -> LatLon {
        LatLon::new(
            (self.south + self.north) / 2.0,
            (self.west + self.east) / 2.0,
        )
        .expect("center of a valid box is valid")
    }

    /// Whether `point` lies inside the box (edges inclusive).
    pub fn contains(&self, point: LatLon) -> bool {
        (self.south..=self.north).contains(&point.lat())
            && (self.west..=self.east).contains(&point.lon())
    }

    /// Whether `other` intersects this box (shared edges count).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.south <= other.north
            && other.south <= self.north
            && self.west <= other.east
            && other.west <= self.east
    }

    /// Returns a copy expanded by `margin_deg` degrees on every side,
    /// clamped to the valid coordinate domain.
    pub fn expanded(&self, margin_deg: f64) -> BoundingBox {
        BoundingBox {
            south: (self.south - margin_deg).max(-90.0),
            north: (self.north + margin_deg).min(90.0),
            west: (self.west - margin_deg).max(-180.0),
            east: (self.east + margin_deg).min(180.0),
        }
    }

    /// Clamps a point into the box, used when synthetic walks step outside
    /// the city.
    pub fn clamp(&self, point: LatLon) -> LatLon {
        LatLon::new(
            point.lat().clamp(self.south, self.north),
            point.lon().clamp(self.west, self.east),
        )
        .expect("clamped point is valid")
    }

    /// Approximate width of the box in metres, measured along the
    /// mid-latitude parallel.
    pub fn width_m(&self) -> f64 {
        let mid = self.center().lat();
        let a = LatLon::new(mid, self.west).expect("valid");
        let b = LatLon::new(mid, self.east).expect("valid");
        a.haversine_m(b)
    }

    /// Approximate height of the box in metres, measured along the
    /// mid-longitude meridian.
    pub fn height_m(&self) -> f64 {
        let mid = self.center().lon();
        let a = LatLon::new(self.south, mid).expect("valid");
        let b = LatLon::new(self.north, mid).expect("valid");
        a.haversine_m(b)
    }

    /// Linearly interpolates a point inside the box; `fx`/`fy` in `[0,1]`
    /// map west→east and south→north respectively (values are clamped).
    pub fn lerp(&self, fx: f64, fy: f64) -> LatLon {
        let fx = fx.clamp(0.0, 1.0);
        let fy = fy.clamp(0.0, 1.0);
        LatLon::new(
            self.south + fy * self.lat_span(),
            self.west + fx * self.lon_span(),
        )
        .expect("interpolated point is inside a valid box")
    }
}

impl fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.4}, {:.4}] x [{:.4}, {:.4}]",
            self.south, self.north, self.west, self.east
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_rejects_empty() {
        assert!(matches!(
            BoundingBox::new(41.0, 40.0, -74.0, -73.0),
            Err(GeoError::EmptyBounds { .. })
        ));
        assert!(matches!(
            BoundingBox::new(40.0, 41.0, -73.0, -74.0),
            Err(GeoError::EmptyBounds { .. })
        ));
    }

    #[test]
    fn nyc_constant_is_valid_and_contains_manhattan() {
        let b = BoundingBox::NYC;
        assert!(b.south() < b.north() && b.west() < b.east());
        assert!(b.contains(LatLon::new(40.7831, -73.9712).unwrap()));
        assert!(!b.contains(LatLon::new(34.05, -118.24).unwrap())); // LA
    }

    #[test]
    fn enclosing_covers_inputs() {
        let pts = [
            LatLon::new(40.7, -74.0).unwrap(),
            LatLon::new(40.8, -73.9).unwrap(),
            LatLon::new(40.75, -73.95).unwrap(),
        ];
        let b = BoundingBox::enclosing(pts).unwrap();
        for p in pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn enclosing_empty_is_none() {
        assert!(BoundingBox::enclosing(std::iter::empty()).is_none());
    }

    #[test]
    fn enclosing_single_point_is_nonempty() {
        let p = LatLon::new(40.7, -74.0).unwrap();
        let b = BoundingBox::enclosing([p]).unwrap();
        assert!(b.contains(p));
        assert!(b.lat_span() > 0.0 && b.lon_span() > 0.0);
    }

    #[test]
    fn intersects_detects_overlap_and_disjoint() {
        let a = BoundingBox::new(40.0, 41.0, -74.0, -73.0).unwrap();
        let b = BoundingBox::new(40.5, 41.5, -73.5, -72.5).unwrap();
        let c = BoundingBox::new(42.0, 43.0, -74.0, -73.0).unwrap();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn nyc_dimensions_plausible() {
        // NYC extent should be tens of kilometres on each side.
        let b = BoundingBox::NYC;
        assert!(
            (30_000.0..80_000.0).contains(&b.width_m()),
            "{}",
            b.width_m()
        );
        assert!(
            (30_000.0..80_000.0).contains(&b.height_m()),
            "{}",
            b.height_m()
        );
    }

    #[test]
    fn clamp_moves_outside_point_to_edge() {
        let b = BoundingBox::NYC;
        let outside = LatLon::new(45.0, -80.0).unwrap();
        let clamped = b.clamp(outside);
        assert!(b.contains(clamped));
    }

    proptest! {
        #[test]
        fn prop_lerp_inside(fx in 0.0f64..=1.0, fy in 0.0f64..=1.0) {
            let b = BoundingBox::NYC;
            prop_assert!(b.contains(b.lerp(fx, fy)));
        }

        #[test]
        fn prop_center_inside(
            s in -80.0f64..0.0, span_lat in 0.1f64..40.0,
            w in -170.0f64..0.0, span_lon in 0.1f64..40.0,
        ) {
            let b = BoundingBox::new(s, s + span_lat, w, w + span_lon).unwrap();
            prop_assert!(b.contains(b.center()));
        }

        #[test]
        fn prop_expanded_contains_original_corners(margin in 0.0f64..5.0) {
            let b = BoundingBox::NYC;
            let e = b.expanded(margin);
            prop_assert!(e.contains(LatLon::new(b.south(), b.west()).unwrap()));
            prop_assert!(e.contains(LatLon::new(b.north(), b.east()).unwrap()));
        }
    }
}
