//! Error types for geographic operations.

use std::error::Error;
use std::fmt;

/// Error produced by geographic constructors and operations.
///
/// All validating constructors in this crate ([`crate::LatLon::new`],
/// [`crate::BoundingBox::new`], [`crate::MicrocellGrid::new`], …) return
/// this type on invalid input.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// Latitude outside `[-90, 90]` or not finite.
    InvalidLatitude(f64),
    /// Longitude outside `[-180, 180]` or not finite.
    InvalidLongitude(f64),
    /// Bounding box with min >= max on some axis.
    EmptyBounds {
        /// Southern latitude bound supplied.
        south: f64,
        /// Northern latitude bound supplied.
        north: f64,
        /// Western longitude bound supplied.
        west: f64,
        /// Eastern longitude bound supplied.
        east: f64,
    },
    /// Grid construction with zero rows or columns.
    EmptyGrid,
    /// Grid or cell-store construction beyond a supported limit: more
    /// than [`crate::MicrocellGrid::MAX_SIDE`] rows or columns on a
    /// side, or a dense [`crate::cells::CellStore`] over more cells
    /// than it will allocate.
    GridTooLarge {
        /// Rows requested (or derived from a cell size).
        rows: u32,
        /// Columns requested (or derived from a cell size).
        cols: u32,
    },
    /// Tile coordinate out of range for its zoom level.
    InvalidTile {
        /// Zoom level supplied.
        zoom: u8,
        /// Tile x index supplied.
        x: u32,
        /// Tile y index supplied.
        y: u32,
    },
    /// Zoom level above the supported maximum (30).
    InvalidZoom(u8),
    /// Quadkey string containing a character other than `0`–`3`.
    InvalidQuadkey(String),
    /// Clustering requested with an invalid parameter (e.g. `k == 0`).
    InvalidClusterParam(&'static str),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => {
                write!(f, "latitude {v} is outside [-90, 90] or not finite")
            }
            GeoError::InvalidLongitude(v) => {
                write!(f, "longitude {v} is outside [-180, 180] or not finite")
            }
            GeoError::EmptyBounds {
                south,
                north,
                west,
                east,
            } => write!(
                f,
                "bounding box is empty: south {south} north {north} west {west} east {east}"
            ),
            GeoError::EmptyGrid => write!(f, "grid must have at least one row and one column"),
            GeoError::GridTooLarge { rows, cols } => write!(
                f,
                "grid of {rows} x {cols} cells exceeds the supported maximum cell count"
            ),
            GeoError::InvalidTile { zoom, x, y } => {
                write!(f, "tile ({x}, {y}) is out of range for zoom {zoom}")
            }
            GeoError::InvalidZoom(z) => write!(f, "zoom level {z} exceeds supported maximum 30"),
            GeoError::InvalidQuadkey(s) => write!(f, "invalid quadkey string {s:?}"),
            GeoError::InvalidClusterParam(what) => {
                write!(f, "invalid clustering parameter: {what}")
            }
        }
    }
}

impl Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = GeoError::InvalidLatitude(123.0);
        let msg = err.to_string();
        assert!(msg.starts_with("latitude"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeoError>();
    }

    #[test]
    fn debug_never_empty() {
        assert!(!format!("{:?}", GeoError::EmptyGrid).is_empty());
    }
}
