//! Trajectory metrics over ordered coordinate sequences.
//!
//! The mobility-science quantities behind the paper's premise (its
//! citation \[1\], González et al., "Understanding individual human
//! mobility patterns"):
//!
//! - [`path_length_m`] — total great-circle distance travelled.
//! - [`radius_of_gyration_m`] — the characteristic size of a user's
//!   territory: RMS distance of visits from their centre of mass.
//! - [`center_of_mass`] — the visit centroid.
//! - [`simplify_rdp`] — Ramer–Douglas–Peucker polyline simplification
//!   for rendering long trajectories cheaply.

use crate::LatLon;

/// The centroid of a visit sequence, or `None` when empty.
pub fn center_of_mass(points: &[LatLon]) -> Option<LatLon> {
    if points.is_empty() {
        return None;
    }
    let n = points.len() as f64;
    let lat = points.iter().map(|p| p.lat()).sum::<f64>() / n;
    let lon = points.iter().map(|p| p.lon()).sum::<f64>() / n;
    LatLon::new(lat.clamp(-90.0, 90.0), lon.clamp(-180.0, 180.0)).ok()
}

/// Total path length in metres along consecutive points.
pub fn path_length_m(points: &[LatLon]) -> f64 {
    points.windows(2).map(|w| w[0].haversine_m(w[1])).sum()
}

/// Radius of gyration in metres: `sqrt(mean(d_i^2))` where `d_i` is
/// each point's distance from the centre of mass. 0.0 for empty or
/// single-point inputs.
///
/// # Examples
///
/// ```
/// use crowdweb_geo::{trajectory::radius_of_gyration_m, LatLon};
///
/// # fn main() -> Result<(), crowdweb_geo::GeoError> {
/// let home = LatLon::new(40.70, -73.99)?;
/// let work = LatLon::new(40.76, -73.98)?;
/// let rg = radius_of_gyration_m(&[home, work, home, work]);
/// // Half the home-work distance, since mass splits evenly.
/// assert!((rg - home.haversine_m(work) / 2.0).abs() < 50.0);
/// # Ok(())
/// # }
/// ```
pub fn radius_of_gyration_m(points: &[LatLon]) -> f64 {
    let Some(com) = center_of_mass(points) else {
        return 0.0;
    };
    if points.len() < 2 {
        return 0.0;
    }
    let mean_sq = points
        .iter()
        .map(|p| com.equirectangular_m(*p).powi(2))
        .sum::<f64>()
        / points.len() as f64;
    mean_sq.sqrt()
}

/// Ramer–Douglas–Peucker simplification: keeps endpoints and every
/// point whose perpendicular offset from the current chord exceeds
/// `epsilon_m` metres. Inputs of fewer than 3 points are returned
/// unchanged.
pub fn simplify_rdp(points: &[LatLon], epsilon_m: f64) -> Vec<LatLon> {
    if points.len() < 3 {
        return points.to_vec();
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    rdp_recurse(points, 0, points.len() - 1, epsilon_m, &mut keep);
    points
        .iter()
        .zip(&keep)
        .filter_map(|(p, &k)| k.then_some(*p))
        .collect()
}

fn rdp_recurse(points: &[LatLon], first: usize, last: usize, epsilon_m: f64, keep: &mut [bool]) {
    if last <= first + 1 {
        return;
    }
    // Perpendicular distance in a local equirectangular frame.
    let a = points[first];
    let b = points[last];
    let mean_lat = ((a.lat() + b.lat()) / 2.0).to_radians();
    let proj = |p: LatLon| -> (f64, f64) {
        (
            p.lon().to_radians() * mean_lat.cos() * crate::EARTH_RADIUS_M,
            p.lat().to_radians() * crate::EARTH_RADIUS_M,
        )
    };
    let (ax, ay) = proj(a);
    let (bx, by) = proj(b);
    let (dx, dy) = (bx - ax, by - ay);
    let len_sq = dx * dx + dy * dy;

    let mut worst = 0usize;
    let mut worst_dist = -1.0f64;
    for (i, point) in points.iter().enumerate().take(last).skip(first + 1) {
        let (px, py) = proj(*point);
        let dist = if len_sq == 0.0 {
            ((px - ax).powi(2) + (py - ay).powi(2)).sqrt()
        } else {
            ((py - ay) * dx - (px - ax) * dy).abs() / len_sq.sqrt()
        };
        if dist > worst_dist {
            worst_dist = dist;
            worst = i;
        }
    }
    if worst_dist > epsilon_m {
        keep[worst] = true;
        rdp_recurse(points, first, worst, epsilon_m, keep);
        rdp_recurse(points, worst, last, epsilon_m, keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn center_of_mass_basics() {
        assert_eq!(center_of_mass(&[]), None);
        let single = p(40.7, -74.0);
        assert_eq!(center_of_mass(&[single]), Some(single));
        let com = center_of_mass(&[p(40.0, -74.0), p(41.0, -73.0)]).unwrap();
        assert!((com.lat() - 40.5).abs() < 1e-12);
        assert!((com.lon() - -73.5).abs() < 1e-12);
    }

    #[test]
    fn path_length_accumulates() {
        assert_eq!(path_length_m(&[]), 0.0);
        assert_eq!(path_length_m(&[p(40.7, -74.0)]), 0.0);
        let a = p(40.70, -74.00);
        let b = p(40.75, -74.00);
        let c = p(40.75, -73.95);
        let total = path_length_m(&[a, b, c]);
        assert!((total - (a.haversine_m(b) + b.haversine_m(c))).abs() < 1e-6);
    }

    #[test]
    fn gyration_zero_for_stationary() {
        let home = p(40.7, -74.0);
        assert_eq!(radius_of_gyration_m(&[home]), 0.0);
        assert!(radius_of_gyration_m(&[home, home, home]) < 1e-9);
    }

    #[test]
    fn gyration_grows_with_territory() {
        let home = p(40.70, -74.00);
        let near = p(40.71, -74.00);
        let far = p(40.90, -73.70);
        let small = radius_of_gyration_m(&[home, near, home, near]);
        let large = radius_of_gyration_m(&[home, far, home, far]);
        assert!(large > small * 5.0, "small {small} large {large}");
    }

    #[test]
    fn rdp_keeps_endpoints_and_corners() {
        // A right angle: the corner must survive.
        let pts = vec![
            p(40.70, -74.00),
            p(40.72, -74.00),
            p(40.74, -74.00), // corner
            p(40.74, -73.98),
            p(40.74, -73.96),
        ];
        let simplified = simplify_rdp(&pts, 50.0);
        assert_eq!(simplified.first(), pts.first());
        assert_eq!(simplified.last(), pts.last());
        assert!(
            simplified.contains(&pts[2]),
            "corner dropped: {simplified:?}"
        );
        assert!(simplified.len() < pts.len());
    }

    #[test]
    fn rdp_collapses_collinear_points() {
        let pts: Vec<LatLon> = (0..10)
            .map(|i| p(40.70 + f64::from(i) * 0.005, -74.0))
            .collect();
        let simplified = simplify_rdp(&pts, 10.0);
        assert_eq!(simplified.len(), 2);
    }

    #[test]
    fn rdp_small_inputs_unchanged() {
        let pts = vec![p(40.7, -74.0), p(40.8, -74.0)];
        assert_eq!(simplify_rdp(&pts, 1.0), pts);
        assert!(simplify_rdp(&[], 1.0).is_empty());
    }

    proptest! {
        #[test]
        fn prop_gyration_nonnegative_and_bounded(
            pts in proptest::collection::vec((40.5f64..40.9, -74.2f64..-73.7), 0..30)
        ) {
            let pts: Vec<LatLon> = pts.into_iter().map(|(a, b)| p(a, b)).collect();
            let rg = radius_of_gyration_m(&pts);
            prop_assert!(rg >= 0.0);
            // Bounded by the maximum distance from the centroid.
            if let Some(com) = center_of_mass(&pts) {
                let max_d = pts.iter()
                    .map(|q| com.equirectangular_m(*q))
                    .fold(0.0f64, f64::max);
                prop_assert!(rg <= max_d + 1e-9);
            }
        }

        #[test]
        fn prop_rdp_output_is_subsequence(
            pts in proptest::collection::vec((40.5f64..40.9, -74.2f64..-73.7), 0..20),
            eps in 1.0f64..2000.0,
        ) {
            let pts: Vec<LatLon> = pts.into_iter().map(|(a, b)| p(a, b)).collect();
            let simplified = simplify_rdp(&pts, eps);
            // Subsequence check.
            let mut i = 0;
            for q in &simplified {
                while i < pts.len() && pts[i] != *q { i += 1; }
                prop_assert!(i < pts.len(), "not a subsequence");
                i += 1;
            }
            if pts.len() >= 2 {
                prop_assert!(simplified.len() >= 2);
            }
        }
    }
}
