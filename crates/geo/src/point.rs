//! WGS-84 coordinates and great-circle math.

use crate::{GeoError, EARTH_RADIUS_M};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated WGS-84 latitude/longitude pair, in degrees.
///
/// The constructor rejects non-finite values and values outside the valid
/// range, so every `LatLon` in the system is known-good.
///
/// # Examples
///
/// ```
/// use crowdweb_geo::LatLon;
///
/// # fn main() -> Result<(), crowdweb_geo::GeoError> {
/// let empire_state = LatLon::new(40.7484, -73.9857)?;
/// let one_wtc = LatLon::new(40.7127, -74.0134)?;
/// let d = empire_state.haversine_m(one_wtc);
/// assert!((d - 4_600.0).abs() < 300.0, "roughly 4.6 km apart, got {d}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    lat: f64,
    lon: f64,
}

impl LatLon {
    /// Creates a coordinate from latitude and longitude in degrees.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLatitude`] if `lat` is not finite or is
    /// outside `[-90, 90]`, and [`GeoError::InvalidLongitude`] likewise for
    /// `lon` and `[-180, 180]`.
    pub fn new(lat: f64, lon: f64) -> Result<Self, GeoError> {
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(GeoError::InvalidLatitude(lat));
        }
        if !lon.is_finite() || !(-180.0..=180.0).contains(&lon) {
            return Err(GeoError::InvalidLongitude(lon));
        }
        Ok(LatLon { lat, lon })
    }

    /// Latitude in degrees, in `[-90, 90]`.
    pub fn lat(self) -> f64 {
        self.lat
    }

    /// Longitude in degrees, in `[-180, 180]`.
    pub fn lon(self) -> f64 {
        self.lon
    }

    /// Great-circle distance to `other` in metres using the haversine
    /// formula, which is numerically stable for small distances.
    pub fn haversine_m(self, other: LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Fast approximate distance to `other` in metres using the
    /// equirectangular projection.
    ///
    /// Within a city-sized extent the error versus [`Self::haversine_m`] is
    /// well under 0.1 %, and it avoids the trigonometric calls on the hot
    /// path of grid assignment and clustering.
    pub fn equirectangular_m(self, other: LatLon) -> f64 {
        let mean_lat = ((self.lat + other.lat) / 2.0).to_radians();
        let dx = (other.lon - self.lon).to_radians() * mean_lat.cos();
        let dy = (other.lat - self.lat).to_radians();
        EARTH_RADIUS_M * (dx * dx + dy * dy).sqrt()
    }

    /// Initial bearing from `self` to `other`, in degrees clockwise from
    /// north, normalized to `[0, 360)`.
    pub fn bearing_deg(self, other: LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        (y.atan2(x).to_degrees() + 360.0) % 360.0
    }

    /// Destination point after travelling `distance_m` metres along the
    /// given initial `bearing_deg` (degrees clockwise from north).
    ///
    /// The result is clamped back into the valid coordinate domain, so it
    /// is always constructible.
    pub fn destination(self, bearing_deg: f64, distance_m: f64) -> LatLon {
        let delta = distance_m / EARTH_RADIUS_M;
        let theta = bearing_deg.to_radians();
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
        let lon2 = lon1
            + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
        let lat = lat2.to_degrees().clamp(-90.0, 90.0);
        let mut lon = lon2.to_degrees();
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon < -180.0 {
            lon += 360.0;
        }
        LatLon {
            lat,
            lon: lon.clamp(-180.0, 180.0),
        }
    }

    /// Midpoint between `self` and `other` computed on the chord, adequate
    /// for city-scale extents.
    pub fn midpoint(self, other: LatLon) -> LatLon {
        LatLon {
            lat: (self.lat + other.lat) / 2.0,
            lon: (self.lon + other.lon) / 2.0,
        }
    }
}

impl fmt::Display for LatLon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(matches!(
            LatLon::new(91.0, 0.0),
            Err(GeoError::InvalidLatitude(_))
        ));
        assert!(matches!(
            LatLon::new(0.0, -181.0),
            Err(GeoError::InvalidLongitude(_))
        ));
        assert!(matches!(
            LatLon::new(f64::NAN, 0.0),
            Err(GeoError::InvalidLatitude(_))
        ));
        assert!(matches!(
            LatLon::new(0.0, f64::INFINITY),
            Err(GeoError::InvalidLongitude(_))
        ));
    }

    #[test]
    fn new_accepts_boundaries() {
        assert!(LatLon::new(90.0, 180.0).is_ok());
        assert!(LatLon::new(-90.0, -180.0).is_ok());
    }

    #[test]
    fn haversine_zero_for_same_point() {
        let a = p(40.75, -73.99);
        assert_eq!(a.haversine_m(a), 0.0);
    }

    #[test]
    fn haversine_known_distance_jfk_lga() {
        // JFK to LaGuardia is about 17.5 km.
        let jfk = p(40.6413, -73.7781);
        let lga = p(40.7769, -73.8740);
        let d = jfk.haversine_m(lga);
        assert!((16_000.0..19_000.0).contains(&d), "got {d}");
    }

    #[test]
    fn equirectangular_close_to_haversine_in_city() {
        let a = p(40.70, -74.02);
        let b = p(40.88, -73.91);
        let h = a.haversine_m(b);
        let e = a.equirectangular_m(b);
        assert!((h - e).abs() / h < 1e-3, "h {h} e {e}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let a = p(40.0, -74.0);
        assert!((a.bearing_deg(p(41.0, -74.0)) - 0.0).abs() < 0.5);
        assert!((a.bearing_deg(p(39.0, -74.0)) - 180.0).abs() < 0.5);
        assert!((a.bearing_deg(p(40.0, -73.0)) - 90.0).abs() < 1.0);
        assert!((a.bearing_deg(p(40.0, -75.0)) - 270.0).abs() < 1.0);
    }

    #[test]
    fn destination_round_trip() {
        let a = p(40.75, -73.99);
        let b = a.destination(63.0, 5_000.0);
        assert!((a.haversine_m(b) - 5_000.0).abs() < 1.0);
    }

    #[test]
    fn display_has_six_decimals() {
        assert_eq!(p(1.0, 2.0).to_string(), "(1.000000, 2.000000)");
    }

    proptest! {
        #[test]
        fn prop_distance_symmetric(
            lat1 in -80.0f64..80.0, lon1 in -179.0f64..179.0,
            lat2 in -80.0f64..80.0, lon2 in -179.0f64..179.0,
        ) {
            let a = p(lat1, lon1);
            let b = p(lat2, lon2);
            let ab = a.haversine_m(b);
            let ba = b.haversine_m(a);
            prop_assert!((ab - ba).abs() <= 1e-6 * ab.max(1.0));
        }

        #[test]
        fn prop_triangle_inequality(
            lat1 in -80.0f64..80.0, lon1 in -179.0f64..179.0,
            lat2 in -80.0f64..80.0, lon2 in -179.0f64..179.0,
            lat3 in -80.0f64..80.0, lon3 in -179.0f64..179.0,
        ) {
            let a = p(lat1, lon1);
            let b = p(lat2, lon2);
            let c = p(lat3, lon3);
            prop_assert!(a.haversine_m(c) <= a.haversine_m(b) + b.haversine_m(c) + 1e-6);
        }

        #[test]
        fn prop_destination_stays_valid(
            lat in -89.0f64..89.0, lon in -180.0f64..180.0,
            bearing in 0.0f64..360.0, dist in 0.0f64..100_000.0,
        ) {
            let a = p(lat, lon);
            let b = a.destination(bearing, dist);
            prop_assert!(LatLon::new(b.lat(), b.lon()).is_ok());
        }
    }
}
