//! Uniform microcell grids.
//!
//! CrowdWeb aggregates a city into *microcells* — small rectangular cells
//! of a uniform grid laid over the city's bounding box. A user whose
//! pattern says "shops at 8 am" is placed in the microcell of the shop,
//! and the crowd view counts users per microcell per time window.
//!
//! Cell ids are 64-bit row-major indexes, so a grid may address up to
//! `u32::MAX × u32::MAX` cells — sub-meter resolutions over a whole city
//! fit without overflow. Grids are pure coordinate math and never
//! allocate per cell; per-cell *storage* lives in [`crate::cells`] and
//! chooses dense or sparse backing by occupancy.

use crate::{BoundingBox, GeoError, LatLon};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a microcell inside a [`MicrocellGrid`].
///
/// Cells are numbered row-major from the south-west corner: cell 0 is the
/// south-west cell, cell `cols - 1` the south-east, and so on northward.
/// The index is 64-bit: `row * cols + col` never overflows even for grids
/// with `u32::MAX` rows and columns.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CellId(pub u64);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// A uniform rows × cols grid over a bounding box, mapping coordinates to
/// [`CellId`]s and back.
///
/// # Examples
///
/// ```
/// use crowdweb_geo::{BoundingBox, LatLon, MicrocellGrid};
///
/// # fn main() -> Result<(), crowdweb_geo::GeoError> {
/// let grid = MicrocellGrid::new(BoundingBox::NYC, 10, 10)?;
/// let p = LatLon::new(40.7580, -73.9855)?;
/// let cell = grid.cell_of(p).expect("point is inside the grid");
/// assert!(grid.cell_bounds(cell).unwrap().contains(p));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicrocellGrid {
    bounds: BoundingBox,
    rows: u32,
    cols: u32,
}

impl MicrocellGrid {
    /// Maximum rows or columns on a single side (`u32::MAX`). Grids are
    /// coordinate math only, so the total cell count `rows * cols` may
    /// reach `2^64 - 2^33 + 1` without allocating anything; dense
    /// *storage* limits live in [`crate::cells::CellStore`].
    pub const MAX_SIDE: u32 = u32::MAX;

    /// Creates a grid of `rows` × `cols` cells over `bounds`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyGrid`] if `rows` or `cols` is zero.
    pub fn new(bounds: BoundingBox, rows: u32, cols: u32) -> Result<Self, GeoError> {
        if rows == 0 || cols == 0 {
            return Err(GeoError::EmptyGrid);
        }
        Ok(MicrocellGrid { bounds, rows, cols })
    }

    /// Creates a grid over `bounds` whose cells are approximately
    /// `cell_size_m` metres on each side (at least 1×1).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidClusterParam`] if `cell_size_m` is not
    /// strictly positive and finite, and [`GeoError::GridTooLarge`] if
    /// the size implies more than [`Self::MAX_SIDE`] rows or columns.
    pub fn with_cell_size(bounds: BoundingBox, cell_size_m: f64) -> Result<Self, GeoError> {
        if !(cell_size_m.is_finite() && cell_size_m > 0.0) {
            return Err(GeoError::InvalidClusterParam(
                "cell size must be positive and finite",
            ));
        }
        let rows_f = (bounds.height_m() / cell_size_m).ceil().max(1.0);
        let cols_f = (bounds.width_m() / cell_size_m).ceil().max(1.0);
        // Check in f64 first: a microscopic cell size can yield per-side
        // counts beyond u32, which the `as u32` cast would saturate.
        if rows_f > f64::from(Self::MAX_SIDE) || cols_f > f64::from(Self::MAX_SIDE) {
            return Err(GeoError::GridTooLarge {
                rows: rows_f.min(f64::from(u32::MAX)) as u32,
                cols: cols_f.min(f64::from(u32::MAX)) as u32,
            });
        }
        MicrocellGrid::new(bounds, rows_f as u32, cols_f as u32)
    }

    /// The bounding box the grid covers.
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// Number of rows (south→north).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (west→east).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Total number of cells (`rows * cols`). Cannot overflow: both
    /// factors are `u32`, so the product always fits in `u64`.
    pub fn len(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }

    /// Whether the grid has zero cells. Always `false` for a constructed
    /// grid; provided for API completeness alongside [`Self::len`].
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cell containing `point`, or `None` if the point is outside the
    /// grid bounds. Points exactly on the north/east edge map to the last
    /// row/column.
    pub fn cell_of(&self, point: LatLon) -> Option<CellId> {
        if !self.bounds.contains(point) {
            return None;
        }
        let fy = (point.lat() - self.bounds.south()) / self.bounds.lat_span();
        let fx = (point.lon() - self.bounds.west()) / self.bounds.lon_span();
        let row = ((fy * f64::from(self.rows)) as u32).min(self.rows - 1);
        let col = ((fx * f64::from(self.cols)) as u32).min(self.cols - 1);
        Some(CellId(
            u64::from(row) * u64::from(self.cols) + u64::from(col),
        ))
    }

    /// `(row, col)` of a cell, or `None` if the id is out of range.
    #[allow(clippy::cast_possible_truncation)]
    pub fn position(&self, cell: CellId) -> Option<(u32, u32)> {
        if cell.0 >= self.len() {
            return None;
        }
        // Both quotient and remainder fit u32: cell.0 < rows * cols.
        Some((
            (cell.0 / u64::from(self.cols)) as u32,
            (cell.0 % u64::from(self.cols)) as u32,
        ))
    }

    /// The id for a `(row, col)` position, or `None` if out of range.
    pub fn cell_at(&self, row: u32, col: u32) -> Option<CellId> {
        if row >= self.rows || col >= self.cols {
            return None;
        }
        Some(CellId(
            u64::from(row) * u64::from(self.cols) + u64::from(col),
        ))
    }

    /// Bounding box of a cell, or `None` if the id is out of range.
    pub fn cell_bounds(&self, cell: CellId) -> Option<BoundingBox> {
        let (row, col) = self.position(cell)?;
        let lat_step = self.bounds.lat_span() / f64::from(self.rows);
        let lon_step = self.bounds.lon_span() / f64::from(self.cols);
        let south = self.bounds.south() + f64::from(row) * lat_step;
        let west = self.bounds.west() + f64::from(col) * lon_step;
        BoundingBox::new(south, south + lat_step, west, west + lon_step).ok()
    }

    /// Center point of a cell, or `None` if the id is out of range.
    pub fn cell_center(&self, cell: CellId) -> Option<LatLon> {
        self.cell_bounds(cell).map(|b| b.center())
    }

    /// Iterator over every cell id, row-major from the south-west corner.
    ///
    /// Beware: this enumerates `rows * cols` ids, which can be
    /// astronomically many for fine grids. Prefer iterating *occupied*
    /// cells via [`crate::cells::CellStore`] wherever counts exist.
    pub fn iter(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.len()).map(CellId)
    }

    /// The up-to-8 neighbouring cells of `cell` (fewer at the grid edge),
    /// or an empty vector if the id is out of range.
    pub fn neighbors(&self, cell: CellId) -> Vec<CellId> {
        let Some((row, col)) = self.position(cell) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(8);
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let (nr, nc) = (i64::from(row) + dr, i64::from(col) + dc);
                if nr >= 0 && nc >= 0 && (nr as u32) < self.rows && (nc as u32) < self.cols {
                    out.push(CellId(nr as u64 * u64::from(self.cols) + nc as u64));
                }
            }
        }
        out
    }

    /// Chebyshev (king-move) distance between two cells in cell units, or
    /// `None` if either id is out of range.
    pub fn chebyshev_distance(&self, a: CellId, b: CellId) -> Option<u32> {
        let (ar, ac) = self.position(a)?;
        let (br, bc) = self.position(b)?;
        Some((ar.abs_diff(br)).max(ac.abs_diff(bc)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid() -> MicrocellGrid {
        MicrocellGrid::new(BoundingBox::NYC, 8, 12).unwrap()
    }

    #[test]
    fn new_rejects_zero_dims() {
        assert!(matches!(
            MicrocellGrid::new(BoundingBox::NYC, 0, 5),
            Err(GeoError::EmptyGrid)
        ));
        assert!(matches!(
            MicrocellGrid::new(BoundingBox::NYC, 5, 0),
            Err(GeoError::EmptyGrid)
        ));
    }

    #[test]
    fn former_overflow_extents_now_construct() {
        // 2^16 x 2^16 = 2^32 cells overflowed the old u32 row-major
        // CellId math and returned GridTooLarge; with 64-bit ids it is
        // plain coordinate math.
        let g = MicrocellGrid::new(BoundingBox::NYC, 1 << 16, 1 << 16).unwrap();
        assert_eq!(g.len(), 1u64 << 32);
        // 2^13 x 2^13 = 2^26 exceeded the old 2^24 dense cap.
        let g = MicrocellGrid::new(BoundingBox::NYC, 1 << 13, 1 << 13).unwrap();
        assert_eq!(g.len(), 1u64 << 26);
        // The extreme corner: u32::MAX per side still round-trips ids.
        let g = MicrocellGrid::new(BoundingBox::NYC, u32::MAX, u32::MAX).unwrap();
        let last = g.cell_at(u32::MAX - 1, u32::MAX - 1).unwrap();
        assert_eq!(last.0, g.len() - 1);
        assert_eq!(g.position(last), Some((u32::MAX - 1, u32::MAX - 1)));
    }

    #[test]
    fn with_cell_size_rejects_microscopic_cells() {
        // A 1 µm cell over NYC implies ~5e10 cells per side, which
        // exceeds the u32 per-side limit even with 64-bit cell ids.
        let err = MicrocellGrid::with_cell_size(BoundingBox::NYC, 1e-6).unwrap_err();
        assert!(matches!(err, GeoError::GridTooLarge { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn with_cell_size_accepts_sub_meter_cells() {
        // 10 cm cells over NYC: ~half a million per side, ~2.4e11 cells.
        // The old 2^24 total-cell cap rejected this; it now constructs.
        let g = MicrocellGrid::with_cell_size(BoundingBox::NYC, 0.1).unwrap();
        assert!(g.len() > 1u64 << 32, "len {}", g.len());
        let p = LatLon::new(40.7580, -73.9855).unwrap();
        let cell = g.cell_of(p).unwrap();
        assert!(g.cell_bounds(cell).unwrap().contains(p));
    }

    #[test]
    fn with_cell_size_produces_expected_scale() {
        let g = MicrocellGrid::with_cell_size(BoundingBox::NYC, 1_000.0).unwrap();
        // NYC is roughly 48x50 km, so about that many 1 km cells per side.
        assert!((30..100).contains(&g.rows()), "rows {}", g.rows());
        assert!((30..100).contains(&g.cols()), "cols {}", g.cols());
    }

    #[test]
    fn with_cell_size_rejects_nonpositive() {
        assert!(MicrocellGrid::with_cell_size(BoundingBox::NYC, 0.0).is_err());
        assert!(MicrocellGrid::with_cell_size(BoundingBox::NYC, -5.0).is_err());
        assert!(MicrocellGrid::with_cell_size(BoundingBox::NYC, f64::NAN).is_err());
    }

    #[test]
    fn corners_map_to_corner_cells() {
        let g = grid();
        let b = g.bounds();
        let sw = LatLon::new(b.south(), b.west()).unwrap();
        let ne = LatLon::new(b.north(), b.east()).unwrap();
        assert_eq!(g.cell_of(sw), Some(CellId(0)));
        assert_eq!(g.cell_of(ne), Some(CellId(g.len() - 1)));
    }

    #[test]
    fn outside_point_is_none() {
        assert_eq!(grid().cell_of(LatLon::new(0.0, 0.0).unwrap()), None);
    }

    #[test]
    fn position_round_trip() {
        let g = grid();
        for cell in g.iter() {
            let (row, col) = g.position(cell).unwrap();
            assert_eq!(g.cell_at(row, col), Some(cell));
        }
    }

    #[test]
    fn out_of_range_ids_are_none() {
        let g = grid();
        let bad = CellId(g.len());
        assert_eq!(g.position(bad), None);
        assert_eq!(g.cell_bounds(bad), None);
        assert_eq!(g.cell_center(bad), None);
        assert!(g.neighbors(bad).is_empty());
    }

    #[test]
    fn interior_cell_has_eight_neighbors() {
        let g = grid();
        let interior = g.cell_at(3, 5).unwrap();
        assert_eq!(g.neighbors(interior).len(), 8);
        let corner = g.cell_at(0, 0).unwrap();
        assert_eq!(g.neighbors(corner).len(), 3);
    }

    #[test]
    fn chebyshev_distance_examples() {
        let g = grid();
        let a = g.cell_at(0, 0).unwrap();
        let b = g.cell_at(3, 5).unwrap();
        assert_eq!(g.chebyshev_distance(a, b), Some(5));
        assert_eq!(g.chebyshev_distance(a, a), Some(0));
    }

    #[test]
    fn cell_bounds_tile_the_grid_bounds() {
        let g = grid();
        let total_area: f64 = g
            .iter()
            .map(|c| {
                let b = g.cell_bounds(c).unwrap();
                b.lat_span() * b.lon_span()
            })
            .sum();
        let full = g.bounds().lat_span() * g.bounds().lon_span();
        assert!((total_area - full).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_cell_contains_its_point(fx in 0.0f64..1.0, fy in 0.0f64..1.0) {
            let g = grid();
            let p = g.bounds().lerp(fx, fy);
            let cell = g.cell_of(p).unwrap();
            let b = g.cell_bounds(cell).unwrap();
            // Allow edge tolerance: a point on a shared edge belongs to
            // exactly one cell but is contained by both boxes.
            prop_assert!(b.expanded(1e-12).contains(p));
        }

        #[test]
        fn prop_center_maps_back_to_cell(row in 0u32..8, col in 0u32..12) {
            let g = grid();
            let cell = g.cell_at(row, col).unwrap();
            let center = g.cell_center(cell).unwrap();
            prop_assert_eq!(g.cell_of(center), Some(cell));
        }

        #[test]
        fn prop_round_trip_on_huge_grids(row in 0u32..u32::MAX, col in 0u32..u32::MAX) {
            // Former overflow territory: every (row, col) on a
            // u32::MAX-per-side grid round-trips through its 64-bit id.
            let g = MicrocellGrid::new(BoundingBox::NYC, u32::MAX, u32::MAX).unwrap();
            let cell = g.cell_at(row, col).unwrap();
            prop_assert_eq!(g.position(cell), Some((row, col)));
        }
    }
}
