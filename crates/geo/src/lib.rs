//! Geographic substrate for the CrowdWeb platform.
//!
//! This crate provides the spatial primitives that every other CrowdWeb
//! subsystem builds on:
//!
//! - [`LatLon`] — a validated WGS-84 coordinate with great-circle distance
//!   and bearing math ([`point`]).
//! - [`BoundingBox`] — rectangular geographic extents, including the New
//!   York City extent used by the paper's Foursquare dataset ([`bbox`]).
//! - [`MicrocellGrid`] — the uniform *microcell* decomposition of a city
//!   that CrowdWeb aggregates crowds into ([`grid`]).
//! - [`CellStore`] — per-cell count storage, dense for small display
//!   grids and sparse (occupancy-priced) for sub-meter resolutions and
//!   huge extents ([`cells`]).
//! - [`TileCoord`] — slippy-map tile coordinates and quadkeys for serving
//!   map data to the web front-end ([`tile`]).
//! - Clustering — grid-density and k-means clustering of check-in points
//!   ([`cluster`]).
//! - GeoJSON — minimal geometry/feature types for interchange
//!   ([`geojson`]).
//!
//! # Examples
//!
//! ```
//! use crowdweb_geo::{BoundingBox, LatLon, MicrocellGrid};
//!
//! # fn main() -> Result<(), crowdweb_geo::GeoError> {
//! let nyc = BoundingBox::NYC;
//! let grid = MicrocellGrid::new(nyc, 20, 20)?;
//! let times_square = LatLon::new(40.7580, -73.9855)?;
//! let cell = grid.cell_of(times_square).expect("inside NYC");
//! assert!(grid.cell_bounds(cell).unwrap().contains(times_square));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbox;
pub mod cells;
pub mod cluster;
pub mod error;
pub mod geojson;
pub mod grid;
pub mod point;
pub mod polyline;
pub mod tile;
pub mod trajectory;

pub use bbox::BoundingBox;
pub use cells::CellStore;
pub use cluster::{grid_density_clusters, kmeans, Cluster, KMeansConfig};
pub use error::GeoError;
pub use grid::{CellId, MicrocellGrid};
pub use point::LatLon;
pub use tile::TileCoord;

/// Mean Earth radius in metres (IUGG value), used by all distance math.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;
