//! Minimal GeoJSON (RFC 7946) types for interchange with the web
//! front-end.
//!
//! Only the subset CrowdWeb serves is modelled: `Point` and `Polygon`
//! geometries, features with free-form JSON-like properties, and feature
//! collections. Serialization derives the exact RFC 7946 field layout via
//! serde, so `serde_json::to_string` on these types yields valid GeoJSON.

use crate::{BoundingBox, LatLon};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A GeoJSON property value. A deliberately small subset of JSON — enough
/// for counts, labels, and identifiers — so this crate does not depend on
/// `serde_json` itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum PropertyValue {
    /// String property.
    Str(String),
    /// Numeric property.
    Num(f64),
    /// Integer property (serialized as a JSON number).
    Int(i64),
    /// Boolean property.
    Bool(bool),
}

impl From<&str> for PropertyValue {
    fn from(v: &str) -> Self {
        PropertyValue::Str(v.to_owned())
    }
}

impl From<String> for PropertyValue {
    fn from(v: String) -> Self {
        PropertyValue::Str(v)
    }
}

impl From<f64> for PropertyValue {
    fn from(v: f64) -> Self {
        PropertyValue::Num(v)
    }
}

impl From<i64> for PropertyValue {
    fn from(v: i64) -> Self {
        PropertyValue::Int(v)
    }
}

impl From<bool> for PropertyValue {
    fn from(v: bool) -> Self {
        PropertyValue::Bool(v)
    }
}

/// A GeoJSON geometry: `Point` or `Polygon`.
///
/// Coordinates follow the GeoJSON order `[longitude, latitude]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", content = "coordinates")]
pub enum Geometry {
    /// A single position.
    Point([f64; 2]),
    /// An ordered path of positions.
    LineString(Vec<[f64; 2]>),
    /// An exterior ring (first == last position), no holes.
    Polygon(Vec<Vec<[f64; 2]>>),
}

impl Geometry {
    /// A point geometry from a coordinate.
    pub fn point(p: LatLon) -> Geometry {
        Geometry::Point([p.lon(), p.lat()])
    }

    /// A line-string geometry from an ordered coordinate path.
    pub fn line(points: &[LatLon]) -> Geometry {
        Geometry::LineString(points.iter().map(|p| [p.lon(), p.lat()]).collect())
    }

    /// A rectangle polygon from a bounding box (closed exterior ring,
    /// counter-clockwise per RFC 7946).
    pub fn rect(b: BoundingBox) -> Geometry {
        let ring = vec![
            [b.west(), b.south()],
            [b.east(), b.south()],
            [b.east(), b.north()],
            [b.west(), b.north()],
            [b.west(), b.south()],
        ];
        Geometry::Polygon(vec![ring])
    }
}

/// A GeoJSON feature: one geometry plus properties.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Feature {
    /// Always the string `"Feature"`.
    #[serde(rename = "type")]
    pub feature_type: FeatureTag,
    /// The feature's geometry.
    pub geometry: Geometry,
    /// Free-form properties (sorted map for deterministic output).
    pub properties: BTreeMap<String, PropertyValue>,
}

/// Marker for the GeoJSON `"Feature"` type tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FeatureTag {
    /// The only allowed value.
    #[default]
    Feature,
}

/// Marker for the GeoJSON `"FeatureCollection"` type tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FeatureCollectionTag {
    /// The only allowed value.
    #[default]
    FeatureCollection,
}

impl Feature {
    /// Creates a feature with no properties.
    pub fn new(geometry: Geometry) -> Feature {
        Feature {
            feature_type: FeatureTag::Feature,
            geometry,
            properties: BTreeMap::new(),
        }
    }

    /// Adds a property, builder-style.
    ///
    /// # Examples
    ///
    /// ```
    /// use crowdweb_geo::geojson::{Feature, Geometry};
    /// use crowdweb_geo::LatLon;
    ///
    /// # fn main() -> Result<(), crowdweb_geo::GeoError> {
    /// let p = LatLon::new(40.7580, -73.9855)?;
    /// let f = Feature::new(Geometry::point(p)).with_property("name", "Times Square");
    /// assert_eq!(f.properties.len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_property(mut self, key: &str, value: impl Into<PropertyValue>) -> Feature {
        self.properties.insert(key.to_owned(), value.into());
        self
    }
}

/// A GeoJSON feature collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FeatureCollection {
    /// Always the string `"FeatureCollection"`.
    #[serde(rename = "type")]
    pub collection_type: FeatureCollectionTag,
    /// The member features.
    pub features: Vec<Feature>,
}

impl FeatureCollection {
    /// Creates an empty collection.
    pub fn new() -> FeatureCollection {
        FeatureCollection::default()
    }
}

impl FromIterator<Feature> for FeatureCollection {
    fn from_iter<I: IntoIterator<Item = Feature>>(iter: I) -> Self {
        FeatureCollection {
            collection_type: FeatureCollectionTag::FeatureCollection,
            features: iter.into_iter().collect(),
        }
    }
}

impl Extend<Feature> for FeatureCollection {
    fn extend<I: IntoIterator<Item = Feature>>(&mut self, iter: I) {
        self.features.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_coordinates_are_lon_lat() {
        let p = LatLon::new(40.75, -73.98).unwrap();
        match Geometry::point(p) {
            Geometry::Point([lon, lat]) => {
                assert_eq!(lon, -73.98);
                assert_eq!(lat, 40.75);
            }
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn line_preserves_order() {
        let a = LatLon::new(40.70, -74.00).unwrap();
        let b = LatLon::new(40.75, -73.98).unwrap();
        match Geometry::line(&[a, b]) {
            Geometry::LineString(coords) => {
                assert_eq!(coords, vec![[-74.00, 40.70], [-73.98, 40.75]]);
            }
            other => panic!("expected line string, got {other:?}"),
        }
    }

    #[test]
    fn rect_ring_is_closed() {
        let g = Geometry::rect(BoundingBox::NYC);
        match g {
            Geometry::Polygon(rings) => {
                assert_eq!(rings.len(), 1);
                assert_eq!(rings[0].first(), rings[0].last());
                assert_eq!(rings[0].len(), 5);
            }
            other => panic!("expected polygon, got {other:?}"),
        }
    }

    #[test]
    fn feature_builder_accumulates_properties() {
        let p = LatLon::new(40.75, -73.98).unwrap();
        let f = Feature::new(Geometry::point(p))
            .with_property("count", 7i64)
            .with_property("kind", "hotspot")
            .with_property("score", 0.5)
            .with_property("active", true);
        assert_eq!(f.properties.len(), 4);
        assert_eq!(f.properties["count"], PropertyValue::Int(7));
        assert_eq!(f.properties["active"], PropertyValue::Bool(true));
    }

    #[test]
    fn collection_from_iterator() {
        let p = LatLon::new(40.75, -73.98).unwrap();
        let fc: FeatureCollection = (0..3).map(|_| Feature::new(Geometry::point(p))).collect();
        assert_eq!(fc.features.len(), 3);
    }

    #[test]
    fn collection_extend() {
        let p = LatLon::new(40.75, -73.98).unwrap();
        let mut fc = FeatureCollection::new();
        fc.extend([Feature::new(Geometry::point(p))]);
        assert_eq!(fc.features.len(), 1);
    }
}
