//! Clustering of geographic points.
//!
//! Two complementary algorithms:
//!
//! - [`grid_density_clusters`] — fast density clustering on a
//!   [`MicrocellGrid`]: occupied cells above a density threshold are
//!   flood-filled into connected clusters. This is how CrowdWeb groups
//!   dense check-in areas into *hotspots*.
//! - [`kmeans`] — classic Lloyd's k-means over coordinates, used to place
//!   venue centroids and to derive activity centers for synthetic agents.

use crate::{GeoError, LatLon, MicrocellGrid};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// A cluster of points: member indices into the input slice plus a
/// centroid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Indices into the input point slice.
    pub members: Vec<usize>,
    /// Mean coordinate of the members.
    pub centroid: LatLon,
}

impl Cluster {
    /// Number of member points.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

fn centroid_of(points: &[LatLon], members: &[usize]) -> LatLon {
    let n = members.len().max(1) as f64;
    let (mut lat, mut lon) = (0.0, 0.0);
    for &i in members {
        lat += points[i].lat();
        lon += points[i].lon();
    }
    LatLon::new((lat / n).clamp(-90.0, 90.0), (lon / n).clamp(-180.0, 180.0))
        .expect("mean of valid coordinates is valid")
}

/// Groups points into clusters of 8-connected grid cells whose occupancy
/// is at least `min_points` per cell.
///
/// Points falling outside the grid or in under-dense cells are treated as
/// noise and appear in no cluster. Clusters are returned largest-first.
///
/// # Errors
///
/// Returns [`GeoError::InvalidClusterParam`] if `min_points == 0`.
///
/// # Examples
///
/// ```
/// use crowdweb_geo::{grid_density_clusters, BoundingBox, LatLon, MicrocellGrid};
///
/// # fn main() -> Result<(), crowdweb_geo::GeoError> {
/// let grid = MicrocellGrid::new(BoundingBox::NYC, 40, 40)?;
/// let hotspot = LatLon::new(40.7580, -73.9855)?;
/// let points: Vec<LatLon> = (0..20).map(|_| hotspot).collect();
/// let clusters = grid_density_clusters(&points, &grid, 3)?;
/// assert_eq!(clusters.len(), 1);
/// assert_eq!(clusters[0].len(), 20);
/// # Ok(())
/// # }
/// ```
pub fn grid_density_clusters(
    points: &[LatLon],
    grid: &MicrocellGrid,
    min_points: usize,
) -> Result<Vec<Cluster>, GeoError> {
    if min_points == 0 {
        return Err(GeoError::InvalidClusterParam("min_points must be positive"));
    }
    let mut by_cell: HashMap<crate::CellId, Vec<usize>> = HashMap::new();
    for (i, &p) in points.iter().enumerate() {
        if let Some(cell) = grid.cell_of(p) {
            by_cell.entry(cell).or_default().push(i);
        }
    }
    by_cell.retain(|_, v| v.len() >= min_points);

    let mut visited: HashMap<crate::CellId, bool> = HashMap::new();
    let mut clusters = Vec::new();
    // Deterministic iteration: sort the dense cells.
    let mut dense: Vec<_> = by_cell.keys().copied().collect();
    dense.sort();
    for seed in dense {
        if visited.get(&seed).copied().unwrap_or(false) {
            continue;
        }
        let mut members = Vec::new();
        let mut queue = VecDeque::from([seed]);
        visited.insert(seed, true);
        while let Some(cell) = queue.pop_front() {
            members.extend_from_slice(&by_cell[&cell]);
            for nb in grid.neighbors(cell) {
                if by_cell.contains_key(&nb) && !visited.get(&nb).copied().unwrap_or(false) {
                    visited.insert(nb, true);
                    queue.push_back(nb);
                }
            }
        }
        members.sort_unstable();
        let centroid = centroid_of(points, &members);
        clusters.push(Cluster { members, centroid });
    }
    clusters.sort_by_key(|c| std::cmp::Reverse(c.len()));
    Ok(clusters)
}

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters to produce.
    pub k: usize,
    /// Maximum Lloyd iterations before giving up on convergence.
    pub max_iterations: usize,
    /// Stop when no centroid moves more than this many metres.
    pub tolerance_m: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iterations: 100,
            tolerance_m: 1.0,
        }
    }
}

/// Lloyd's k-means over coordinates with deterministic farthest-point
/// initialization (no RNG, so results are reproducible).
///
/// Returns exactly `min(k, points.len())` non-empty clusters, sorted
/// largest-first.
///
/// # Errors
///
/// Returns [`GeoError::InvalidClusterParam`] if `config.k == 0` or
/// `config.max_iterations == 0`.
///
/// # Examples
///
/// ```
/// use crowdweb_geo::{kmeans, KMeansConfig, LatLon};
///
/// # fn main() -> Result<(), crowdweb_geo::GeoError> {
/// let downtown = LatLon::new(40.71, -74.01)?;
/// let midtown = LatLon::new(40.76, -73.98)?;
/// let mut pts = vec![downtown; 10];
/// pts.extend(vec![midtown; 10]);
/// let clusters = kmeans(&pts, &KMeansConfig { k: 2, ..Default::default() })?;
/// assert_eq!(clusters.len(), 2);
/// assert_eq!(clusters[0].len(), 10);
/// # Ok(())
/// # }
/// ```
pub fn kmeans(points: &[LatLon], config: &KMeansConfig) -> Result<Vec<Cluster>, GeoError> {
    if config.k == 0 {
        return Err(GeoError::InvalidClusterParam("k must be positive"));
    }
    if config.max_iterations == 0 {
        return Err(GeoError::InvalidClusterParam(
            "max_iterations must be positive",
        ));
    }
    if points.is_empty() {
        return Ok(Vec::new());
    }
    let k = config.k.min(points.len());

    // Farthest-point ("k-means++ without randomness") initialization.
    let mut centroids: Vec<LatLon> = vec![points[0]];
    while centroids.len() < k {
        let (best_idx, _) = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d = centroids
                    .iter()
                    .map(|c| c.equirectangular_m(*p))
                    .fold(f64::INFINITY, f64::min);
                (i, d)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("points is non-empty");
        centroids.push(points[best_idx]);
    }

    let mut assignment = vec![0usize; points.len()];
    for _ in 0..config.max_iterations {
        // Assign.
        for (i, p) in points.iter().enumerate() {
            assignment[i] = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    p.equirectangular_m(**a)
                        .total_cmp(&p.equirectangular_m(**b))
                })
                .map(|(j, _)| j)
                .expect("k >= 1");
        }
        // Update.
        let mut moved = 0.0f64;
        for (j, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..points.len()).filter(|&i| assignment[i] == j).collect();
            if members.is_empty() {
                continue;
            }
            let new_c = centroid_of(points, &members);
            moved = moved.max(centroid.equirectangular_m(new_c));
            *centroid = new_c;
        }
        if moved <= config.tolerance_m {
            break;
        }
    }

    let mut clusters: Vec<Cluster> = (0..k)
        .map(|j| {
            let members: Vec<usize> = (0..points.len()).filter(|&i| assignment[i] == j).collect();
            let centroid = if members.is_empty() {
                centroids[j]
            } else {
                centroid_of(points, &members)
            };
            Cluster { members, centroid }
        })
        .filter(|c| !c.is_empty())
        .collect();
    clusters.sort_by_key(|c| std::cmp::Reverse(c.len()));
    Ok(clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoundingBox;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn density_rejects_zero_min_points() {
        let grid = MicrocellGrid::new(BoundingBox::NYC, 10, 10).unwrap();
        assert!(grid_density_clusters(&[], &grid, 0).is_err());
    }

    #[test]
    fn density_two_separate_hotspots() {
        let grid = MicrocellGrid::new(BoundingBox::NYC, 40, 40).unwrap();
        let mut pts = vec![p(40.71, -74.01); 10];
        pts.extend(vec![p(40.85, -73.80); 7]);
        let clusters = grid_density_clusters(&pts, &grid, 3).unwrap();
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].len(), 10);
        assert_eq!(clusters[1].len(), 7);
    }

    #[test]
    fn density_ignores_sparse_noise() {
        let grid = MicrocellGrid::new(BoundingBox::NYC, 40, 40).unwrap();
        let mut pts = vec![p(40.71, -74.01); 10];
        pts.push(p(40.60, -73.70)); // lone point, below threshold
        let clusters = grid_density_clusters(&pts, &grid, 3).unwrap();
        assert_eq!(clusters.len(), 1);
        let total: usize = clusters.iter().map(Cluster::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn density_ignores_points_outside_grid() {
        let grid = MicrocellGrid::new(BoundingBox::NYC, 10, 10).unwrap();
        let pts = vec![p(0.0, 0.0); 10];
        let clusters = grid_density_clusters(&pts, &grid, 1).unwrap();
        assert!(clusters.is_empty());
    }

    #[test]
    fn density_merges_adjacent_cells() {
        let grid = MicrocellGrid::new(BoundingBox::NYC, 40, 40).unwrap();
        // Two adjacent cells, both dense: should flood-fill into one cluster.
        let c0 = grid.cell_center(grid.cell_at(20, 20).unwrap()).unwrap();
        let c1 = grid.cell_center(grid.cell_at(20, 21).unwrap()).unwrap();
        let mut pts = vec![c0; 5];
        pts.extend(vec![c1; 5]);
        let clusters = grid_density_clusters(&pts, &grid, 3).unwrap();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 10);
    }

    #[test]
    fn kmeans_rejects_bad_config() {
        assert!(kmeans(
            &[],
            &KMeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(kmeans(
            &[],
            &KMeansConfig {
                max_iterations: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn kmeans_empty_input_is_empty() {
        assert!(kmeans(&[], &KMeansConfig::default()).unwrap().is_empty());
    }

    #[test]
    fn kmeans_separates_two_blobs() {
        let mut pts = vec![p(40.71, -74.01); 12];
        pts.extend(vec![p(40.85, -73.80); 8]);
        let clusters = kmeans(
            &pts,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].len(), 12);
        assert_eq!(clusters[1].len(), 8);
        // Centroids are at the blob centers.
        assert!(clusters[0].centroid.haversine_m(p(40.71, -74.01)) < 10.0);
    }

    #[test]
    fn kmeans_k_larger_than_points() {
        let pts = vec![p(40.7, -74.0), p(40.8, -73.9)];
        let clusters = kmeans(
            &pts,
            &KMeansConfig {
                k: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(clusters.len(), 2);
    }

    proptest! {
        #[test]
        fn prop_kmeans_partitions_all_points(
            n in 1usize..60, k in 1usize..6, seed in any::<u64>()
        ) {
            // Pseudo-random but deterministic point cloud.
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let b = BoundingBox::NYC;
            let pts: Vec<LatLon> = (0..n).map(|_| b.lerp(next(), next())).collect();
            let clusters = kmeans(&pts, &KMeansConfig { k, ..Default::default() }).unwrap();
            let mut seen: Vec<usize> = clusters.iter().flat_map(|c| c.members.clone()).collect();
            seen.sort_unstable();
            // Every point in exactly one cluster.
            prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn prop_density_members_unique(n in 1usize..60, seed in any::<u64>()) {
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let b = BoundingBox::NYC;
            let grid = MicrocellGrid::new(b, 20, 20).unwrap();
            let pts: Vec<LatLon> = (0..n).map(|_| b.lerp(next(), next())).collect();
            let clusters = grid_density_clusters(&pts, &grid, 1).unwrap();
            let mut seen: Vec<usize> = clusters.iter().flat_map(|c| c.members.clone()).collect();
            let len = seen.len();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(len, seen.len());
            // min_points = 1 means every in-grid point is clustered.
            prop_assert_eq!(len, n);
        }
    }
}
