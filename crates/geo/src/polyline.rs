//! Google encoded-polyline format (precision 5).
//!
//! The compact ASCII encoding used by most web map stacks for
//! trajectories; CrowdWeb serves user paths in it. Implemented from the
//! published algorithm: deltas of 1e-5-scaled coordinates, zig-zag
//! signed encoding, 5-bit groups offset by 63.

use crate::{GeoError, LatLon};

/// Encodes a coordinate sequence as a polyline string.
///
/// # Examples
///
/// ```
/// use crowdweb_geo::{polyline::{decode, encode}, LatLon};
///
/// # fn main() -> Result<(), crowdweb_geo::GeoError> {
/// // The canonical example from Google's documentation.
/// let points = vec![
///     LatLon::new(38.5, -120.2)?,
///     LatLon::new(40.7, -120.95)?,
///     LatLon::new(43.252, -126.453)?,
/// ];
/// let encoded = encode(&points);
/// assert_eq!(encoded, "_p~iF~ps|U_ulLnnqC_mqNvxq`@");
/// assert_eq!(decode(&encoded)?, points);
/// # Ok(())
/// # }
/// ```
pub fn encode(points: &[LatLon]) -> String {
    let mut out = String::new();
    let (mut prev_lat, mut prev_lon) = (0i64, 0i64);
    for p in points {
        let lat = (p.lat() * 1e5).round() as i64;
        let lon = (p.lon() * 1e5).round() as i64;
        encode_value(lat - prev_lat, &mut out);
        encode_value(lon - prev_lon, &mut out);
        prev_lat = lat;
        prev_lon = lon;
    }
    out
}

fn encode_value(value: i64, out: &mut String) {
    // Zig-zag: left shift, invert if negative.
    let mut v = (value << 1) as u64;
    if value < 0 {
        v = !v;
    }
    while v >= 0x20 {
        out.push(char::from((0x20 | (v & 0x1f)) as u8 + 63));
        v >>= 5;
    }
    out.push(char::from(v as u8 + 63));
}

/// Decodes a polyline string back into coordinates.
///
/// # Errors
///
/// Returns [`GeoError::InvalidQuadkey`] — reused as the generic
/// "malformed encoded string" error — for truncated input or characters
/// outside the valid range, and coordinate-range errors if the decoded
/// values are out of bounds.
pub fn decode(encoded: &str) -> Result<Vec<LatLon>, GeoError> {
    let bytes = encoded.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let (mut lat, mut lon) = (0i64, 0i64);
    while i < bytes.len() {
        let (dlat, next) = decode_value(bytes, i, encoded)?;
        let (dlon, next) = decode_value(bytes, next, encoded)?;
        i = next;
        lat += dlat;
        lon += dlon;
        out.push(LatLon::new(lat as f64 / 1e5, lon as f64 / 1e5)?);
    }
    Ok(out)
}

fn decode_value(bytes: &[u8], mut i: usize, original: &str) -> Result<(i64, usize), GeoError> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&b) = bytes.get(i) else {
            return Err(GeoError::InvalidQuadkey(original.to_owned()));
        };
        if !(63..=127).contains(&b) {
            return Err(GeoError::InvalidQuadkey(original.to_owned()));
        }
        let chunk = u64::from(b - 63);
        result |= (chunk & 0x1f) << shift;
        shift += 5;
        i += 1;
        if chunk < 0x20 {
            break;
        }
        if shift > 64 {
            return Err(GeoError::InvalidQuadkey(original.to_owned()));
        }
    }
    // Undo zig-zag.
    let value = if result & 1 != 0 {
        !(result >> 1) as i64
    } else {
        (result >> 1) as i64
    };
    Ok((value, i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn canonical_google_example() {
        let points = vec![p(38.5, -120.2), p(40.7, -120.95), p(43.252, -126.453)];
        assert_eq!(encode(&points), "_p~iF~ps|U_ulLnnqC_mqNvxq`@");
    }

    #[test]
    fn empty_round_trip() {
        assert_eq!(encode(&[]), "");
        assert!(decode("").unwrap().is_empty());
    }

    #[test]
    fn single_point_round_trip() {
        let points = vec![p(40.7580, -73.9855)];
        let decoded = decode(&encode(&points)).unwrap();
        assert_eq!(decoded.len(), 1);
        assert!((decoded[0].lat() - 40.7580).abs() < 1e-5);
        assert!((decoded[0].lon() - -73.9855).abs() < 1e-5);
    }

    #[test]
    fn decode_rejects_garbage() {
        // Truncated multi-chunk value.
        assert!(decode("_").is_err());
        // Character below the valid range (space = 0x20 < 63).
        assert!(decode(" ").is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip_within_precision(
            pts in proptest::collection::vec((-85.0f64..85.0, -179.0f64..179.0), 0..40)
        ) {
            let points: Vec<LatLon> = pts.into_iter().map(|(a, b)| p(a, b)).collect();
            let decoded = decode(&encode(&points)).unwrap();
            prop_assert_eq!(decoded.len(), points.len());
            for (d, o) in decoded.iter().zip(&points) {
                prop_assert!((d.lat() - o.lat()).abs() < 1.5e-5);
                prop_assert!((d.lon() - o.lon()).abs() < 1.5e-5);
            }
        }

        #[test]
        fn prop_encoding_is_ascii(
            pts in proptest::collection::vec((-85.0f64..85.0, -179.0f64..179.0), 0..20)
        ) {
            let points: Vec<LatLon> = pts.into_iter().map(|(a, b)| p(a, b)).collect();
            let encoded = encode(&points);
            prop_assert!(encoded.bytes().all(|b| (63..=126).contains(&b)));
        }
    }
}
