//! Slippy-map tile coordinates and quadkeys.
//!
//! The CrowdWeb front-end addresses map data in standard Web-Mercator
//! tile coordinates (`z/x/y`, as used by OpenStreetMap) and Bing-style
//! quadkeys. This module implements the projection math from scratch.

use crate::{BoundingBox, GeoError, LatLon};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;
use std::fmt;

/// Maximum supported zoom level. 30 keeps `2^z` comfortably inside `u32`.
pub const MAX_ZOOM: u8 = 30;

/// A Web-Mercator tile coordinate `(zoom, x, y)`.
///
/// `x` grows eastward from the antimeridian, `y` grows southward from the
/// north pole — the standard slippy-map convention.
///
/// # Examples
///
/// ```
/// use crowdweb_geo::{LatLon, TileCoord};
///
/// # fn main() -> Result<(), crowdweb_geo::GeoError> {
/// let p = LatLon::new(40.7580, -73.9855)?; // Times Square
/// let tile = TileCoord::from_latlon(p, 12)?;
/// assert!(tile.bounds().contains(p));
/// assert_eq!(TileCoord::from_quadkey(&tile.quadkey())?, tile);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileCoord {
    zoom: u8,
    x: u32,
    y: u32,
}

impl TileCoord {
    /// Creates a tile coordinate, validating that `x` and `y` fit the zoom
    /// level.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidZoom`] if `zoom > 30`, or
    /// [`GeoError::InvalidTile`] if `x` or `y` is `>= 2^zoom`.
    pub fn new(zoom: u8, x: u32, y: u32) -> Result<Self, GeoError> {
        if zoom > MAX_ZOOM {
            return Err(GeoError::InvalidZoom(zoom));
        }
        let n = 1u32 << zoom;
        if x >= n || y >= n {
            return Err(GeoError::InvalidTile { zoom, x, y });
        }
        Ok(TileCoord { zoom, x, y })
    }

    /// The tile containing `point` at `zoom`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidZoom`] if `zoom > 30`.
    pub fn from_latlon(point: LatLon, zoom: u8) -> Result<Self, GeoError> {
        if zoom > MAX_ZOOM {
            return Err(GeoError::InvalidZoom(zoom));
        }
        let n = f64::from(1u32 << zoom);
        let x = ((point.lon() + 180.0) / 360.0 * n).floor();
        let lat_rad = point.lat().to_radians();
        // Web-Mercator clamps at ±85.0511°; tan blows up beyond that.
        let y_raw = (1.0 - (lat_rad.tan() + 1.0 / lat_rad.cos()).ln() / PI) / 2.0 * n;
        let max = n - 1.0;
        let x = x.clamp(0.0, max) as u32;
        let y = y_raw.floor().clamp(0.0, max) as u32;
        Ok(TileCoord { zoom, x, y })
    }

    /// Parses a Bing-style quadkey (a string of digits `0`–`3`, one per
    /// zoom level).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidQuadkey`] for non-digit characters and
    /// [`GeoError::InvalidZoom`] for keys longer than 30 digits.
    pub fn from_quadkey(key: &str) -> Result<Self, GeoError> {
        if key.len() > usize::from(MAX_ZOOM) {
            return Err(GeoError::InvalidZoom(key.len() as u8));
        }
        let (mut x, mut y) = (0u32, 0u32);
        for ch in key.chars() {
            x <<= 1;
            y <<= 1;
            match ch {
                '0' => {}
                '1' => x |= 1,
                '2' => y |= 1,
                '3' => {
                    x |= 1;
                    y |= 1;
                }
                _ => return Err(GeoError::InvalidQuadkey(key.to_owned())),
            }
        }
        Ok(TileCoord {
            zoom: key.len() as u8,
            x,
            y,
        })
    }

    /// Zoom level.
    pub fn zoom(&self) -> u8 {
        self.zoom
    }

    /// Tile x index (west→east).
    pub fn x(&self) -> u32 {
        self.x
    }

    /// Tile y index (north→south).
    pub fn y(&self) -> u32 {
        self.y
    }

    /// Geographic extent of the tile.
    pub fn bounds(&self) -> BoundingBox {
        let n = f64::from(1u32 << self.zoom);
        let lon_w = f64::from(self.x) / n * 360.0 - 180.0;
        let lon_e = f64::from(self.x + 1) / n * 360.0 - 180.0;
        let lat_n = mercator_y_to_lat(f64::from(self.y) / n);
        let lat_s = mercator_y_to_lat(f64::from(self.y + 1) / n);
        BoundingBox::new(lat_s, lat_n, lon_w, lon_e).expect("tile bounds are valid by construction")
    }

    /// The Bing-style quadkey of this tile (`zoom` digits of `0`–`3`).
    pub fn quadkey(&self) -> String {
        let mut out = String::with_capacity(usize::from(self.zoom));
        for level in (1..=self.zoom).rev() {
            let mask = 1u32 << (level - 1);
            let mut digit = 0u8;
            if self.x & mask != 0 {
                digit += 1;
            }
            if self.y & mask != 0 {
                digit += 2;
            }
            out.push(char::from(b'0' + digit));
        }
        out
    }

    /// The parent tile one zoom level up, or `None` at zoom 0.
    pub fn parent(&self) -> Option<TileCoord> {
        if self.zoom == 0 {
            return None;
        }
        Some(TileCoord {
            zoom: self.zoom - 1,
            x: self.x / 2,
            y: self.y / 2,
        })
    }

    /// The four child tiles one zoom level down, or `None` at the maximum
    /// zoom.
    pub fn children(&self) -> Option<[TileCoord; 4]> {
        if self.zoom >= MAX_ZOOM {
            return None;
        }
        let (z, x, y) = (self.zoom + 1, self.x * 2, self.y * 2);
        Some([
            TileCoord { zoom: z, x, y },
            TileCoord {
                zoom: z,
                x: x + 1,
                y,
            },
            TileCoord {
                zoom: z,
                x,
                y: y + 1,
            },
            TileCoord {
                zoom: z,
                x: x + 1,
                y: y + 1,
            },
        ])
    }

    /// All tiles at `zoom` that intersect `bounds`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidZoom`] if `zoom > 30`.
    pub fn covering(bounds: BoundingBox, zoom: u8) -> Result<Vec<TileCoord>, GeoError> {
        let nw = LatLon::new(bounds.north(), bounds.west()).expect("box corner valid");
        let se = LatLon::new(bounds.south(), bounds.east()).expect("box corner valid");
        let top_left = TileCoord::from_latlon(nw, zoom)?;
        let bottom_right = TileCoord::from_latlon(se, zoom)?;
        let mut out = Vec::new();
        for y in top_left.y..=bottom_right.y {
            for x in top_left.x..=bottom_right.x {
                out.push(TileCoord { zoom, x, y });
            }
        }
        Ok(out)
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.zoom, self.x, self.y)
    }
}

/// Inverse Web-Mercator: fractional tile-space y in `[0,1]` to latitude.
fn mercator_y_to_lat(y_frac: f64) -> f64 {
    let n = PI * (1.0 - 2.0 * y_frac);
    n.sinh().atan().to_degrees()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_validates_range() {
        assert!(TileCoord::new(2, 3, 3).is_ok());
        assert!(matches!(
            TileCoord::new(2, 4, 0),
            Err(GeoError::InvalidTile { .. })
        ));
        assert!(matches!(
            TileCoord::new(31, 0, 0),
            Err(GeoError::InvalidZoom(31))
        ));
    }

    #[test]
    fn zoom_zero_is_world_tile() {
        let t = TileCoord::new(0, 0, 0).unwrap();
        let b = t.bounds();
        assert!((b.west() - -180.0).abs() < 1e-9);
        assert!((b.east() - 180.0).abs() < 1e-9);
        // Mercator clamp latitude.
        assert!((b.north() - 85.0511).abs() < 0.01);
    }

    #[test]
    fn known_tile_for_nyc() {
        // OSM z12 tile for Manhattan is around x=1205..1207, y=1538..1540.
        let p = LatLon::new(40.7580, -73.9855).unwrap();
        let t = TileCoord::from_latlon(p, 12).unwrap();
        assert!((1204..=1208).contains(&t.x()), "x {}", t.x());
        assert!((1537..=1541).contains(&t.y()), "y {}", t.y());
    }

    #[test]
    fn quadkey_known_value() {
        // Bing documentation example: tile (3,5) zoom 3 => "213".
        let t = TileCoord::new(3, 3, 5).unwrap();
        assert_eq!(t.quadkey(), "213");
        assert_eq!(TileCoord::from_quadkey("213").unwrap(), t);
    }

    #[test]
    fn quadkey_rejects_bad_chars() {
        assert!(matches!(
            TileCoord::from_quadkey("0412"),
            Err(GeoError::InvalidQuadkey(_))
        ));
    }

    #[test]
    fn quadkey_empty_is_root() {
        assert_eq!(
            TileCoord::from_quadkey("").unwrap(),
            TileCoord::new(0, 0, 0).unwrap()
        );
    }

    #[test]
    fn parent_child_round_trip() {
        let t = TileCoord::new(10, 300, 400).unwrap();
        let kids = t.children().unwrap();
        for kid in kids {
            assert_eq!(kid.parent(), Some(t));
        }
        assert_eq!(TileCoord::new(0, 0, 0).unwrap().parent(), None);
    }

    #[test]
    fn covering_includes_all_nyc_tiles() {
        let tiles = TileCoord::covering(BoundingBox::NYC, 10).unwrap();
        assert!(!tiles.is_empty());
        // Every tile intersects the box.
        for t in &tiles {
            assert!(t.bounds().intersects(&BoundingBox::NYC), "{t}");
        }
    }

    #[test]
    fn display_is_zxy() {
        assert_eq!(TileCoord::new(3, 1, 2).unwrap().to_string(), "3/1/2");
    }

    proptest! {
        #[test]
        fn prop_latlon_round_trip(
            lat in -84.0f64..84.0, lon in -179.9f64..179.9, zoom in 0u8..16,
        ) {
            let p = LatLon::new(lat, lon).unwrap();
            let t = TileCoord::from_latlon(p, zoom).unwrap();
            prop_assert!(t.bounds().expanded(1e-9).contains(p), "{t} !contains {p}");
        }

        #[test]
        fn prop_quadkey_round_trip(zoom in 0u8..20, seed in any::<u64>()) {
            let n = 1u32 << zoom;
            let x = (seed as u32) % n.max(1);
            let y = ((seed >> 32) as u32) % n.max(1);
            let t = TileCoord::new(zoom, x, y).unwrap();
            prop_assert_eq!(TileCoord::from_quadkey(&t.quadkey()).unwrap(), t);
        }
    }
}
