//! Per-cell count storage with dense and sparse backings.
//!
//! A [`crate::MicrocellGrid`] is pure coordinate math — it can address
//! `u32::MAX × u32::MAX` cells without allocating. Anything that keeps a
//! *count per cell* needs real storage, and allocating one slot per cell
//! stops working the moment grids outgrow the old 2²⁴ dense cap (a
//! 10 cm grid over NYC has ~2.4 × 10¹¹ cells, almost all of them empty
//! ocean and rooftop). [`CellStore`] abstracts over the two layouts:
//!
//! - **Dense** — a `Vec<usize>` indexed by the row-major [`CellId`].
//!   Fastest for small display grids where most cells are occupied.
//! - **Sparse** — a `HashMap<u64, usize>` keyed by the row-major index,
//!   sized by *occupancy* instead of extent. Sub-meter resolutions and
//!   continent-scale extents cost only as much as the cells actually
//!   touched.
//!
//! The key is the row-major `CellId` index rather than a quadkey
//! ([`crate::TileCoord`] has the quadkey math): both identify a cell
//! uniquely, but row-major keys are already what the rest of the
//! pipeline speaks, sort in the same order the dense layout iterates,
//! and need no zoom parameter. Hierarchical aggregation can still derive
//! quadkeys from `(row, col)` on demand.
//!
//! # Determinism
//!
//! Iteration order is pinned: [`CellStore::into_sorted`] yields occupied
//! cells in ascending [`CellId`] order and omits zero counts, so a
//! snapshot built over a sparse store is byte-identical to one built
//! over a dense store, cell for cell.
//!
//! ```
//! use crowdweb_geo::{cells::CellStore, BoundingBox, CellId, MicrocellGrid};
//!
//! # fn main() -> Result<(), crowdweb_geo::GeoError> {
//! // A grid far beyond the old dense cap: 2^32 cells.
//! let grid = MicrocellGrid::new(BoundingBox::NYC, 1 << 16, 1 << 16)?;
//! let mut store = CellStore::for_grid(&grid); // picks sparse
//! store.add(CellId(7), 2);
//! store.add(CellId(4_000_000_000), 1);
//! store.add(CellId(7), 1);
//! assert_eq!(
//!     store.into_sorted(),
//!     vec![(CellId(7), 3), (CellId(4_000_000_000), 1)]
//! );
//! # Ok(())
//! # }
//! ```

use crate::{CellId, GeoError, MicrocellGrid};
use std::collections::HashMap;

/// Per-cell counts over a grid, backed densely or sparsely.
///
/// Build with [`CellStore::for_grid`] (auto-picks the backing by grid
/// size), or force a layout with [`CellStore::dense`] /
/// [`CellStore::sparse`]. Both backings expose identical semantics and
/// the same pinned [`CellStore::into_sorted`] order.
#[derive(Debug, Clone)]
pub struct CellStore {
    /// Total addressable cells (`grid.len()` at construction).
    cells: u64,
    backing: Backing,
}

#[derive(Debug, Clone)]
enum Backing {
    Dense(Vec<usize>),
    Sparse(HashMap<u64, usize>),
}

impl CellStore {
    /// Largest grid a dense store will allocate for (2²⁴ cells — one
    /// `usize` slot each, 128 MiB on 64-bit). This is the old
    /// `MicrocellGrid::MAX_CELLS` cap, demoted from a grid-construction
    /// error to a storage-layout choice.
    pub const DENSE_LIMIT: u64 = 1 << 24;

    /// A store for `grid`, dense when the grid has at most
    /// [`Self::DENSE_LIMIT`] cells and sparse beyond that.
    pub fn for_grid(grid: &MicrocellGrid) -> Self {
        if grid.len() <= Self::DENSE_LIMIT {
            Self::dense(grid).expect("len <= DENSE_LIMIT admits a dense store")
        } else {
            Self::sparse(grid)
        }
    }

    /// A dense store (one slot per cell) for `grid`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::GridTooLarge`] if the grid has more than
    /// [`Self::DENSE_LIMIT`] cells — use [`Self::sparse`] or
    /// [`Self::for_grid`] there.
    pub fn dense(grid: &MicrocellGrid) -> Result<Self, GeoError> {
        let cells = grid.len();
        if cells > Self::DENSE_LIMIT {
            return Err(GeoError::GridTooLarge {
                rows: grid.rows(),
                cols: grid.cols(),
            });
        }
        Ok(CellStore {
            cells,
            backing: Backing::Dense(vec![0; cells as usize]),
        })
    }

    /// A sparse store (hash-indexed by row-major id) for `grid`. Costs
    /// memory proportional to *occupied* cells, not grid extent.
    pub fn sparse(grid: &MicrocellGrid) -> Self {
        CellStore {
            cells: grid.len(),
            backing: Backing::Sparse(HashMap::new()),
        }
    }

    /// Whether this store uses the dense backing.
    pub fn is_dense(&self) -> bool {
        matches!(self.backing, Backing::Dense(_))
    }

    /// Adds `n` to the count of `cell` (saturating).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range for the grid the store was built
    /// for — out-of-range ids are a logic error, and both backings must
    /// reject them identically to keep dense/sparse interchangeable.
    pub fn add(&mut self, cell: CellId, n: usize) {
        assert!(
            cell.0 < self.cells,
            "{cell} is out of range for a store of {} cells",
            self.cells
        );
        if n == 0 {
            return;
        }
        match &mut self.backing {
            Backing::Dense(counts) => {
                let slot = &mut counts[cell.0 as usize];
                *slot = slot.saturating_add(n);
            }
            Backing::Sparse(counts) => {
                let slot = counts.entry(cell.0).or_insert(0);
                *slot = slot.saturating_add(n);
            }
        }
    }

    /// The count stored for `cell` (zero when never added, or out of
    /// range).
    pub fn get(&self, cell: CellId) -> usize {
        if cell.0 >= self.cells {
            return 0;
        }
        match &self.backing {
            Backing::Dense(counts) => counts[cell.0 as usize],
            Backing::Sparse(counts) => counts.get(&cell.0).copied().unwrap_or(0),
        }
    }

    /// Number of cells with a nonzero count.
    pub fn occupied(&self) -> usize {
        match &self.backing {
            Backing::Dense(counts) => counts.iter().filter(|&&c| c > 0).count(),
            Backing::Sparse(counts) => counts.values().filter(|&&c| c > 0).count(),
        }
    }

    /// Whether no cell has a nonzero count.
    pub fn is_empty(&self) -> bool {
        self.occupied() == 0
    }

    /// Consumes the store, yielding `(cell, count)` for every occupied
    /// cell in **ascending [`CellId`] order**, zero counts omitted.
    ///
    /// This order is the determinism contract: dense and sparse stores
    /// with the same contents produce the same vector, byte for byte,
    /// so everything downstream (snapshots, deltas, serialized maps) is
    /// independent of the storage layout.
    pub fn into_sorted(self) -> Vec<(CellId, usize)> {
        match self.backing {
            Backing::Dense(counts) => counts
                .into_iter()
                .enumerate()
                .filter(|&(_, c)| c > 0)
                .map(|(i, c)| (CellId(i as u64), c))
                .collect(),
            Backing::Sparse(counts) => {
                let mut out: Vec<(CellId, usize)> = counts
                    .into_iter()
                    .filter(|&(_, c)| c > 0)
                    .map(|(i, c)| (CellId(i), c))
                    .collect();
                out.sort_unstable_by_key(|&(cell, _)| cell);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoundingBox;
    use proptest::prelude::*;

    fn small_grid() -> MicrocellGrid {
        MicrocellGrid::new(BoundingBox::NYC, 8, 12).unwrap()
    }

    fn huge_grid() -> MicrocellGrid {
        MicrocellGrid::new(BoundingBox::NYC, 1 << 16, 1 << 16).unwrap()
    }

    #[test]
    fn for_grid_picks_dense_for_small_and_sparse_for_huge() {
        assert!(CellStore::for_grid(&small_grid()).is_dense());
        assert!(!CellStore::for_grid(&huge_grid()).is_dense());
    }

    #[test]
    fn dense_refuses_grids_beyond_the_limit() {
        let err = CellStore::dense(&huge_grid()).unwrap_err();
        assert!(matches!(err, GeoError::GridTooLarge { .. }));
    }

    #[test]
    fn sparse_handles_former_overflow_extents() {
        // 2^32 cells: the old dense-only design returned GridTooLarge
        // at grid construction. Sparse storage costs only occupancy.
        let g = huge_grid();
        let mut store = CellStore::sparse(&g);
        let far = CellId(g.len() - 1);
        store.add(far, 3);
        store.add(CellId(0), 1);
        assert_eq!(store.get(far), 3);
        assert_eq!(store.occupied(), 2);
        assert_eq!(store.into_sorted(), vec![(CellId(0), 1), (far, 3)]);
    }

    #[test]
    fn add_accumulates_and_zero_is_a_noop() {
        let mut store = CellStore::for_grid(&small_grid());
        store.add(CellId(5), 2);
        store.add(CellId(5), 0);
        store.add(CellId(5), 3);
        assert_eq!(store.get(CellId(5)), 5);
        assert_eq!(store.occupied(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dense_rejects_out_of_range_ids() {
        let mut store = CellStore::dense(&small_grid()).unwrap();
        store.add(CellId(10_000), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sparse_rejects_out_of_range_ids() {
        let mut store = CellStore::sparse(&small_grid());
        store.add(CellId(10_000), 1);
    }

    #[test]
    fn out_of_range_get_is_zero() {
        let store = CellStore::for_grid(&small_grid());
        assert_eq!(store.get(CellId(u64::MAX)), 0);
    }

    #[test]
    fn empty_store_reports_empty() {
        let store = CellStore::for_grid(&small_grid());
        assert!(store.is_empty());
        assert!(store.into_sorted().is_empty());
    }

    proptest! {
        /// The equivalence contract: for random grid shapes and random
        /// placements, a dense and a sparse store fed the same adds
        /// produce identical sorted contents.
        #[test]
        fn prop_dense_and_sparse_agree(
            rows in 1u32..64,
            cols in 1u32..64,
            adds in proptest::collection::vec((0u64..4096, 1usize..5), 0..64),
        ) {
            let g = MicrocellGrid::new(BoundingBox::NYC, rows, cols).unwrap();
            let mut dense = CellStore::dense(&g).unwrap();
            let mut sparse = CellStore::sparse(&g);
            for &(raw, n) in &adds {
                let cell = CellId(raw % g.len());
                dense.add(cell, n);
                sparse.add(cell, n);
            }
            prop_assert_eq!(dense.occupied(), sparse.occupied());
            prop_assert_eq!(dense.into_sorted(), sparse.into_sorted());
        }

        /// Placements derived from random points and cell sizes agree
        /// between backings too (exercises the grid math path, not just
        /// raw ids).
        #[test]
        fn prop_point_placements_agree(
            cell_size in 50.0f64..5_000.0,
            points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..48),
        ) {
            let g = MicrocellGrid::with_cell_size(BoundingBox::NYC, cell_size).unwrap();
            let mut dense = CellStore::dense(&g).unwrap();
            let mut sparse = CellStore::sparse(&g);
            for &(fx, fy) in &points {
                let cell = g.cell_of(g.bounds().lerp(fx, fy)).unwrap();
                dense.add(cell, 1);
                sparse.add(cell, 1);
            }
            prop_assert_eq!(dense.into_sorted(), sparse.into_sorted());
        }
    }
}
