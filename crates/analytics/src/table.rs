//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use crowdweb_analytics::TextTable;
///
/// let mut t = TextTable::new(&["metric", "value"]);
/// t.row(&["users", "1083"]);
/// let s = t.to_string();
/// assert!(s.contains("users"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> TextTable {
        TextTable {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[&str]) -> &mut TextTable {
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        (0..cols)
            .map(|i| {
                self.rows
                    .iter()
                    .filter_map(|r| r.get(i).map(String::len))
                    .chain(self.headers.get(i).map(String::len))
                    .max()
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}  "));
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total.saturating_sub(2)))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["a", "long header"]);
        t.row(&["wide cell value", "x"]);
        t.row(&["b", "y"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header columns align with row columns.
        let header_pos = lines[0].find("long header").unwrap();
        let cell_pos = lines[2].find('x').unwrap();
        assert_eq!(header_pos, cell_pos);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new(&["a"]);
        t.row(&["1", "extra"]);
        t.row(&[]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let s = t.to_string();
        assert!(s.contains("extra"));
    }

    #[test]
    fn empty_table_has_header_and_rule() {
        let t = TextTable::new(&["only"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }
}
