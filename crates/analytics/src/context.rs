//! Shared experiment pipeline state.

use crowdweb_dataset::Dataset;
use crowdweb_prep::{Prepared, Preprocessor};
use crowdweb_synth::SynthConfig;
use std::error::Error;

/// Everything the per-figure harness functions need, built once:
/// the (synthetic) dataset and its preprocessed form.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The dataset experiments run over.
    pub dataset: Dataset,
    /// The preprocessed study window / users / sequence database.
    pub prepared: Prepared,
    /// The activity-filter threshold the context was prepared with
    /// (needed by experiments that re-run preprocessing at other label
    /// schemes).
    pub min_active_days: usize,
}

impl ExperimentContext {
    /// Builds a context from an explicit generator and preprocessor
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates generation and preprocessing failures.
    pub fn build(
        synth: &SynthConfig,
        prep: &Preprocessor,
    ) -> Result<ExperimentContext, Box<dyn Error>> {
        let dataset = synth.generate()?;
        let prepared = prep.prepare(&dataset)?;
        Ok(ExperimentContext {
            dataset,
            prepared,
            min_active_days: prep.configured_min_active_days(),
        })
    }

    /// Builds a context around an existing dataset (e.g. a loaded TSV).
    ///
    /// # Errors
    ///
    /// Propagates preprocessing failures.
    pub fn from_dataset(
        dataset: Dataset,
        prep: &Preprocessor,
    ) -> Result<ExperimentContext, Box<dyn Error>> {
        let prepared = prep.prepare(&dataset)?;
        Ok(ExperimentContext {
            dataset,
            prepared,
            min_active_days: prep.configured_min_active_days(),
        })
    }

    /// A laptop-fast context (the `SynthConfig::small` miniature with a
    /// filter threshold scaled to its 3-month span).
    ///
    /// # Errors
    ///
    /// Propagates generation and preprocessing failures.
    pub fn small(seed: u64) -> Result<ExperimentContext, Box<dyn Error>> {
        ExperimentContext::build(
            &SynthConfig::small(seed),
            &Preprocessor::new().min_active_days(20),
        )
    }

    /// The full paper-scale context: 1,083 users over 11 months with the
    /// paper's >50-active-day filter. Takes a few seconds to build.
    ///
    /// # Errors
    ///
    /// Propagates generation and preprocessing failures.
    pub fn paper_scale(seed: u64) -> Result<ExperimentContext, Box<dyn Error>> {
        ExperimentContext::build(
            &SynthConfig::paper_nyc().seed(seed),
            &Preprocessor::new(), // >50 active days, 2h slots, Kind labels
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_context_builds() {
        let ctx = ExperimentContext::small(1).unwrap();
        assert!(!ctx.dataset.is_empty());
        assert!(ctx.prepared.user_count() > 0);
        assert_eq!(ctx.prepared.seqdb().user_count(), ctx.prepared.user_count());
    }

    #[test]
    fn contexts_are_deterministic() {
        let a = ExperimentContext::small(9).unwrap();
        let b = ExperimentContext::small(9).unwrap();
        assert_eq!(a.dataset.len(), b.dataset.len());
        assert_eq!(a.prepared.users(), b.prepared.users());
    }
}
