//! One function per paper table/figure.

use crate::ExperimentContext;
use crowdweb_crowd::{validate_against_checkins, CrowdBuilder, CrowdModel, ModelFit, TimeWindows};
use crowdweb_dataset::DatasetStats;
use crowdweb_exec::Parallelism;
use crowdweb_geo::{BoundingBox, MicrocellGrid};
use crowdweb_mobility::{
    evaluate_pattern_predictor, evaluate_predictor, predictability_profile, PatternMiner,
    PredictorKind, UserPatterns,
};
use crowdweb_prep::{LabelScheme, Preprocessor};
use crowdweb_seqmine::{Gsp, ModifiedPrefixSpan, PrefixSpan};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::time::Instant;

/// The support sweep of the paper's Section III experiments
/// (Figures 5 and 7 show 0.25 → 0.75; we add the surrounding points the
/// curves imply).
pub const PAPER_SUPPORT_SWEEP: [f64; 7] = [0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875];

fn detect_all(
    ctx: &ExperimentContext,
    min_support: f64,
) -> Result<Vec<UserPatterns>, Box<dyn Error>> {
    Ok(PatternMiner::new(min_support)?
        .parallelism(Parallelism::Auto)
        .detect_all(&ctx.prepared)?)
}

/// **Figure 5** — average number of sequences (mined patterns) per user
/// at each minimum support threshold. Returns `(min_support, avg)`
/// pairs in sweep order.
///
/// # Errors
///
/// Propagates invalid-support errors.
pub fn fig5_sequences_vs_support(
    ctx: &ExperimentContext,
    supports: &[f64],
) -> Result<Vec<(f64, f64)>, Box<dyn Error>> {
    let mut out = Vec::with_capacity(supports.len());
    for &s in supports {
        let all = detect_all(ctx, s)?;
        let avg = if all.is_empty() {
            0.0
        } else {
            all.iter().map(UserPatterns::pattern_count).sum::<usize>() as f64 / all.len() as f64
        };
        out.push((s, avg));
    }
    Ok(out)
}

/// **Figure 6** — the per-user distribution of the number of sequences
/// at one support threshold (the paper uses 0.5). Returns one value per
/// user.
///
/// # Errors
///
/// Propagates invalid-support errors.
pub fn fig6_sequence_count_distribution(
    ctx: &ExperimentContext,
    min_support: f64,
) -> Result<Vec<f64>, Box<dyn Error>> {
    Ok(detect_all(ctx, min_support)?
        .iter()
        .map(|u| u.pattern_count() as f64)
        .collect())
}

/// **Figure 7** — average pattern length per user at each support
/// threshold. Returns `(min_support, avg_length)` pairs. Users with no
/// patterns at a threshold are excluded from that threshold's average
/// (an empty mine contributes no length observations).
///
/// # Errors
///
/// Propagates invalid-support errors.
pub fn fig7_length_vs_support(
    ctx: &ExperimentContext,
    supports: &[f64],
) -> Result<Vec<(f64, f64)>, Box<dyn Error>> {
    let mut out = Vec::with_capacity(supports.len());
    for &s in supports {
        let all = detect_all(ctx, s)?;
        let lengths: Vec<f64> = all
            .iter()
            .filter(|u| u.pattern_count() > 0)
            .map(UserPatterns::mean_pattern_length)
            .collect();
        let avg = if lengths.is_empty() {
            0.0
        } else {
            lengths.iter().sum::<f64>() / lengths.len() as f64
        };
        out.push((s, avg));
    }
    Ok(out)
}

/// **Figure 8** — the per-user distribution of average pattern length
/// at one support threshold (paper: 0.5). One value per user with at
/// least one pattern.
///
/// # Errors
///
/// Propagates invalid-support errors.
pub fn fig8_length_distribution(
    ctx: &ExperimentContext,
    min_support: f64,
) -> Result<Vec<f64>, Box<dyn Error>> {
    Ok(detect_all(ctx, min_support)?
        .iter()
        .filter(|u| u.pattern_count() > 0)
        .map(UserPatterns::mean_pattern_length)
        .collect())
}

/// Dataset statistics report (the numbers of Section I.1) with the
/// paper's values for comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Measured statistics over the (synthetic) dataset.
    pub measured: DatasetStats,
    /// Users passing the >50-active-day filter in the study window.
    pub filtered_users: usize,
    /// First month of the richest 3-month window, as `"Apr 2012"`.
    pub richest_window: String,
}

/// **Section I.1 table** — computes the dataset statistics the paper
/// reports (227,428 check-ins, 1,083 users, mean ≈ 210, median ≈ 153,
/// sparsity, April–June richest).
pub fn dataset_stats_table(ctx: &ExperimentContext) -> StatsReport {
    let measured = DatasetStats::compute(&ctx.dataset);
    let richest = measured
        .richest_window(3)
        .map(|(m, _)| m.to_string())
        .unwrap_or_else(|| "n/a".to_owned());
    StatsReport {
        measured,
        filtered_users: ctx.prepared.user_count(),
        richest_window: richest,
    }
}

/// One row of the crowd-snapshot table (Figures 3–4): a busy microcell
/// in a time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrowdRow {
    /// Window label, e.g. `"9-10 am"`.
    pub window: String,
    /// Cell id.
    pub cell: u64,
    /// Users in the cell.
    pub users: usize,
}

/// Builds the crowd model used by the Figure 3/4 experiment.
///
/// # Errors
///
/// Propagates mining and synchronization errors.
pub fn build_crowd_model(
    ctx: &ExperimentContext,
    min_support: f64,
    grid_side: u32,
) -> Result<CrowdModel, Box<dyn Error>> {
    let patterns = detect_all(ctx, min_support)?;
    let grid = MicrocellGrid::new(BoundingBox::NYC, grid_side, grid_side)?;
    Ok(CrowdBuilder::new(&ctx.dataset, &ctx.prepared)
        .windows(TimeWindows::hourly())
        .parallelism(Parallelism::Auto)
        .build(&patterns, grid)?)
}

/// **Figures 3–4** — the busiest microcells at two contrasting hours
/// (the paper shows 9–10 am and a second window). Returns up to `top_k`
/// rows per window.
///
/// # Errors
///
/// Propagates mining and synchronization errors.
pub fn crowd_snapshot_table(
    ctx: &ExperimentContext,
    hours: &[u8],
    top_k: usize,
) -> Result<Vec<CrowdRow>, Box<dyn Error>> {
    let model = build_crowd_model(ctx, 0.15, 20)?;
    let mut rows = Vec::new();
    for &h in hours {
        if let Some(snapshot) = model.snapshot_at_hour(h) {
            for (cell, users) in snapshot.busiest_cells().into_iter().take(top_k) {
                rows.push(CrowdRow {
                    window: snapshot.window.label(),
                    cell: cell.0,
                    users,
                });
            }
        }
    }
    Ok(rows)
}

/// One row of the miner-ablation comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Support threshold of this row.
    pub min_support: f64,
    /// Total patterns found by the modified PrefixSpan (gap 2 slots).
    pub modified_patterns: usize,
    /// Total patterns found by classic PrefixSpan.
    pub classic_patterns: usize,
    /// Total patterns found by GSP (identical to classic by
    /// construction).
    pub gsp_patterns: usize,
    /// Wall-clock microseconds for the modified miner.
    pub modified_us: u128,
    /// Wall-clock microseconds for classic PrefixSpan.
    pub classic_us: u128,
    /// Wall-clock microseconds for GSP.
    pub gsp_us: u128,
}

/// **Ablation A1** — modified PrefixSpan (gap-constrained) vs classic
/// PrefixSpan vs GSP over the same sequence database, per support
/// threshold: pattern counts and runtimes.
///
/// # Errors
///
/// Propagates invalid-support errors.
pub fn ablation_miners(
    ctx: &ExperimentContext,
    supports: &[f64],
) -> Result<Vec<AblationRow>, Box<dyn Error>> {
    // Mine the columnar store's symbol slices directly — no decode.
    let seqdb = ctx.prepared.seqdb();
    let table = seqdb.symbols();
    let db = seqdb.day_slices();
    let mut rows = Vec::new();
    for &s in supports {
        let t0 = Instant::now();
        let modified = ModifiedPrefixSpan::new(s)?
            .max_gap(Some(2))
            .mine(&db, |sym| u32::from(table.resolve(*sym).slot.0));
        let modified_us = t0.elapsed().as_micros();

        let t1 = Instant::now();
        let classic = PrefixSpan::new(s)?.mine(&db);
        let classic_us = t1.elapsed().as_micros();

        let t2 = Instant::now();
        let gsp = Gsp::new(s)?.mine(&db);
        let gsp_us = t2.elapsed().as_micros();

        rows.push(AblationRow {
            min_support: s,
            modified_patterns: modified.len(),
            classic_patterns: classic.len(),
            gsp_patterns: gsp.len(),
            modified_us,
            classic_us,
            gsp_us,
        });
    }
    Ok(rows)
}

/// One row of the prediction-accuracy experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionRow {
    /// Label abstraction the predictor ran over.
    pub scheme: String,
    /// Predictor family.
    pub predictor: String,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Number of evaluated predictions.
    pub total: usize,
}

/// **Motivation A2** — next-place prediction accuracy per label scheme
/// and predictor. Over raw venues accuracy is poor (the paper cites
/// 8–25 %); over abstracted kinds it rises — the motivation for
/// CrowdWeb's place abstraction.
///
/// # Errors
///
/// Propagates preprocessing and evaluation errors.
pub fn prediction_accuracy(ctx: &ExperimentContext) -> Result<Vec<PredictionRow>, Box<dyn Error>> {
    let mut rows = Vec::new();
    for scheme in [LabelScheme::Venue, LabelScheme::Category, LabelScheme::Kind] {
        // Re-run preprocessing at this label scheme (window/filter
        // identical: both depend only on check-in times).
        let prepared = Preprocessor::new()
            .label_scheme(scheme)
            .min_active_days(ctx.min_active_days)
            .prepare(&ctx.dataset)?;
        for kind in [
            PredictorKind::TopFrequency,
            PredictorKind::Markov1,
            PredictorKind::Markov2,
        ] {
            let report = evaluate_predictor(prepared.seqdb(), kind, 0.7)?;
            rows.push(PredictionRow {
                scheme: scheme.to_string(),
                predictor: format!("{kind:?}"),
                accuracy: report.accuracy(),
                total: report.total,
            });
        }
        // CrowdWeb's own patterns as a predictor.
        let report = evaluate_pattern_predictor(prepared.seqdb(), 0.15, 0.7)?;
        rows.push(PredictionRow {
            scheme: scheme.to_string(),
            predictor: "Patterns".to_owned(),
            accuracy: report.accuracy(),
            total: report.total,
        });
    }
    Ok(rows)
}

/// **Validation V1** — how well the synchronized crowd model matches the
/// observed check-in distribution, per window (cosine similarity).
///
/// # Errors
///
/// Propagates mining and synchronization errors.
pub fn model_fit(ctx: &ExperimentContext) -> Result<ModelFit, Box<dyn Error>> {
    let model = build_crowd_model(ctx, 0.15, 20)?;
    Ok(validate_against_checkins(
        &model,
        &ctx.dataset,
        ctx.prepared.users(),
        ctx.prepared.window(),
    )?)
}

/// One row of the predictability summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropySummary {
    /// Number of users profiled.
    pub users: usize,
    /// Mean Lempel–Ziv entropy rate (bits/visit).
    pub mean_actual_entropy: f64,
    /// Mean Fano-bound maximum predictability.
    pub mean_max_predictability: f64,
    /// Median Fano-bound maximum predictability.
    pub median_max_predictability: f64,
}

/// **Premise E1** — the "human mobility is highly predictable" premise,
/// quantified: entropy/predictability profiles over every filtered user.
pub fn entropy_summary(ctx: &ExperimentContext) -> EntropySummary {
    let mut entropies = Vec::new();
    let mut pis = Vec::new();
    for view in ctx.prepared.seqdb().views() {
        let p = predictability_profile(&view.decode());
        if p.visits > 0 {
            entropies.push(p.actual_entropy);
            pis.push(p.max_predictability);
        }
    }
    pis.sort_by(f64::total_cmp);
    let n = pis.len();
    EntropySummary {
        users: n,
        mean_actual_entropy: if n == 0 {
            0.0
        } else {
            entropies.iter().sum::<f64>() / n as f64
        },
        mean_max_predictability: if n == 0 {
            0.0
        } else {
            pis.iter().sum::<f64>() / n as f64
        },
        median_max_predictability: if n == 0 { 0.0 } else { pis[n / 2] },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::small(77).unwrap()
    }

    #[test]
    fn fig5_is_monotone_nonincreasing() {
        let series = fig5_sequences_vs_support(&ctx(), &PAPER_SUPPORT_SWEEP).unwrap();
        assert_eq!(series.len(), 7);
        for w in series.windows(2) {
            assert!(w[0].1 >= w[1].1, "fig5 must fall with support: {series:?}");
        }
        // And it is not all-zero.
        assert!(series[0].1 > 0.0);
    }

    #[test]
    fn fig5_shows_steep_then_flat_knee() {
        // The paper: big drop 0.25 -> 0.5, smaller drop 0.5 -> 0.75.
        let series = fig5_sequences_vs_support(&ctx(), &[0.25, 0.5, 0.75]).unwrap();
        let drop1 = series[0].1 - series[1].1;
        let drop2 = series[1].1 - series[2].1;
        assert!(drop1 >= drop2, "knee inverted: {series:?}");
    }

    #[test]
    fn fig6_has_one_value_per_user() {
        let c = ctx();
        let values = fig6_sequence_count_distribution(&c, 0.25).unwrap();
        assert_eq!(values.len(), c.prepared.user_count());
        assert!(values.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn fig7_is_monotone_nonincreasing_over_paper_range() {
        let series = fig7_length_vs_support(&ctx(), &[0.125, 0.25, 0.375, 0.5]).unwrap();
        for w in series.windows(2) {
            assert!(
                w[0].1 + 1e-9 >= w[1].1,
                "fig7 must fall with support: {series:?}"
            );
        }
        assert!(series[0].1 >= 1.0, "lengths are at least 1: {series:?}");
    }

    #[test]
    fn fig8_values_are_valid_lengths() {
        let values = fig8_length_distribution(&ctx(), 0.25).unwrap();
        assert!(!values.is_empty());
        assert!(values.iter().all(|v| *v >= 1.0));
    }

    #[test]
    fn stats_report_matches_generator_shape() {
        let c = ctx();
        let report = dataset_stats_table(&c);
        assert_eq!(report.measured.user_count, 40);
        assert!(report.measured.is_sparse());
        assert_eq!(report.richest_window, "Apr 2012");
        assert!(report.filtered_users > 0);
    }

    #[test]
    fn crowd_table_has_rows_for_busy_hours() {
        let rows = crowd_snapshot_table(&ctx(), &[9, 19], 5).unwrap();
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.users > 0);
        }
        // Crowd distribution differs between the two windows (Fig 3 vs 4).
        let morning: Vec<_> = rows.iter().filter(|r| r.window == "9-10 am").collect();
        let evening: Vec<_> = rows.iter().filter(|r| r.window == "7-8 pm").collect();
        assert!(!morning.is_empty() && !evening.is_empty());
    }

    #[test]
    fn ablation_miners_agree_on_counts() {
        let rows = ablation_miners(&ctx(), &[0.5, 0.75]).unwrap();
        for r in &rows {
            // Classic and GSP find the same patterns.
            assert_eq!(r.classic_patterns, r.gsp_patterns, "{r:?}");
            // The gap constraint can only prune.
            assert!(r.modified_patterns <= r.classic_patterns, "{r:?}");
        }
    }

    #[test]
    fn model_fit_is_strong() {
        let fit = model_fit(&ctx()).unwrap();
        assert!(fit.populated_windows() > 0);
        assert!(fit.mean_cosine() > 0.4, "cosine {}", fit.mean_cosine());
    }

    #[test]
    fn entropy_summary_is_plausible() {
        let s = entropy_summary(&ctx());
        assert!(s.users > 0);
        assert!(s.mean_actual_entropy >= 0.0);
        assert!((0.0..=1.0).contains(&s.mean_max_predictability));
        assert!(
            s.median_max_predictability > 0.4,
            "routine agents should be predictable: {s:?}"
        );
    }

    #[test]
    fn prediction_abstraction_helps() {
        let rows = prediction_accuracy(&ctx()).unwrap();
        assert_eq!(rows.len(), 12);
        let best = |scheme: &str| {
            rows.iter()
                .filter(|r| r.scheme == scheme)
                .map(|r| r.accuracy)
                .fold(0.0f64, f64::max)
        };
        let venue = best("venue");
        let kind = best("kind");
        assert!(
            kind > venue,
            "abstraction must improve predictability: venue {venue} kind {kind}"
        );
        // The paper's motivating claim: raw-venue accuracy is poor
        // (8-25% in its citations). The miniature universe has only 400
        // venues, so allow a slightly looser bound here; the strict
        // <25% check runs at paper scale (12,000 venues) in the
        // prediction_accuracy bench and EXPERIMENTS.md.
        assert!(venue < 0.35, "venue accuracy {venue} should be poor");
    }
}
