//! Experiment harness: one function per table and figure of the
//! CrowdWeb paper, shared by the Criterion benches, the examples, and
//! the report generator.
//!
//! | Paper artifact | Harness entry point |
//! |---|---|
//! | Dataset statistics (Sec. I.1) | [`dataset_stats_table`] |
//! | Fig. 3/4 — crowd per window | [`crowd_snapshot_table`] |
//! | Fig. 5 — sequences/user vs `min_support` | [`fig5_sequences_vs_support`] |
//! | Fig. 6 — distribution of sequence counts | [`fig6_sequence_count_distribution`] |
//! | Fig. 7 — avg sequence length vs `min_support` | [`fig7_length_vs_support`] |
//! | Fig. 8 — distribution of avg lengths | [`fig8_length_distribution`] |
//! | Ablation — modified vs classic vs GSP | [`ablation_miners`] |
//! | Motivation — prediction accuracy | [`prediction_accuracy`] |
//!
//! [`ExperimentContext`] builds the shared pipeline (synthesize →
//! preprocess → mine) once.
//!
//! # Examples
//!
//! ```
//! use crowdweb_analytics::{fig5_sequences_vs_support, ExperimentContext};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = ExperimentContext::small(42)?;
//! let series = fig5_sequences_vs_support(&ctx, &[0.25, 0.5, 0.75])?;
//! // The paper's Figure 5 trend: monotonically non-increasing.
//! assert!(series.windows(2).all(|w| w[0].1 >= w[1].1));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod figures;
pub mod report;
pub mod table;

pub use context::ExperimentContext;
pub use figures::{
    ablation_miners, build_crowd_model, crowd_snapshot_table, dataset_stats_table, entropy_summary,
    fig5_sequences_vs_support, fig6_sequence_count_distribution, fig7_length_vs_support,
    fig8_length_distribution, model_fit, prediction_accuracy, AblationRow, CrowdRow,
    EntropySummary, PredictionRow, StatsReport, PAPER_SUPPORT_SWEEP,
};
pub use report::generate_report;
pub use table::TextTable;
