//! Subsequence containment tests — the support semantics all miners
//! share.

/// Whether `pattern` occurs in `sequence` as a (not necessarily
/// contiguous) subsequence: items in order, gaps allowed.
///
/// # Examples
///
/// ```
/// use crowdweb_seqmine::contains_subsequence;
///
/// assert!(contains_subsequence(&['a', 'c'], &['a', 'b', 'c']));
/// assert!(!contains_subsequence(&['c', 'a'], &['a', 'b', 'c']));
/// assert!(contains_subsequence::<char>(&[], &['a']));
/// ```
pub fn contains_subsequence<T: PartialEq>(pattern: &[T], sequence: &[T]) -> bool {
    let mut pi = 0;
    for item in sequence {
        if pi == pattern.len() {
            return true;
        }
        if *item == pattern[pi] {
            pi += 1;
        }
    }
    pi == pattern.len()
}

/// Gap-constrained containment: like [`contains_subsequence`], but
/// consecutive matched items must satisfy
/// `time(next) - time(prev) <= max_gap`, where `time` maps an item to
/// its time index (CrowdWeb: the check-in's time slot).
///
/// Uses dynamic programming over match positions, so *any* valid
/// embedding is found, not just the greedy one.
///
/// # Examples
///
/// ```
/// use crowdweb_seqmine::contains_subsequence_with_gap;
///
/// // Items are (slot, label); match on labels with slot gaps <= 2.
/// let seq = [(0u32, 'H'), (4, 'W'), (6, 'E')];
/// let time = |it: &(u32, char)| it.0;
/// let eq = |a: &(u32, char), b: &(u32, char)| a.1 == b.1;
/// assert!(contains_subsequence_with_gap(&[(0, 'W'), (0, 'E')], &seq, 2, time, eq));
/// assert!(!contains_subsequence_with_gap(&[(0, 'H'), (0, 'E')], &seq, 2, time, eq));
/// ```
pub fn contains_subsequence_with_gap<T, F, E>(
    pattern: &[T],
    sequence: &[T],
    max_gap: u32,
    time_of: F,
    item_eq: E,
) -> bool
where
    F: Fn(&T) -> u32,
    E: Fn(&T, &T) -> bool,
{
    if pattern.is_empty() {
        return true;
    }
    // end_positions[k]: positions in `sequence` where pattern[..=k] can
    // end under the gap constraint.
    let mut end_positions: Vec<usize> = Vec::new();
    for (k, pitem) in pattern.iter().enumerate() {
        let mut next: Vec<usize> = Vec::new();
        for (pos, sitem) in sequence.iter().enumerate() {
            if !item_eq(sitem, pitem) {
                continue;
            }
            let t = time_of(sitem);
            let ok = if k == 0 {
                true
            } else {
                end_positions.iter().any(|&prev_pos| {
                    prev_pos < pos && {
                        let pt = time_of(&sequence[prev_pos]);
                        t >= pt && t - pt <= max_gap
                    }
                })
            };
            if ok {
                next.push(pos);
            }
        }
        if next.is_empty() {
            return false;
        }
        end_positions = next;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_subsequence_basics() {
        assert!(contains_subsequence(&[1, 3], &[1, 2, 3]));
        assert!(contains_subsequence(&[1, 2, 3], &[1, 2, 3]));
        assert!(!contains_subsequence(&[1, 2, 3, 4], &[1, 2, 3]));
        assert!(!contains_subsequence(&[2, 1], &[1, 2]));
        assert!(contains_subsequence::<i32>(&[], &[]));
        assert!(!contains_subsequence(&[1], &[]));
    }

    #[test]
    fn repeated_items() {
        assert!(contains_subsequence(&[1, 1], &[1, 2, 1]));
        assert!(!contains_subsequence(&[1, 1, 1], &[1, 2, 1]));
    }

    type It = (u32, char);
    fn time(it: &It) -> u32 {
        it.0
    }
    fn eq(a: &It, b: &It) -> bool {
        a.1 == b.1
    }

    #[test]
    fn gap_constraint_blocks_distant_matches() {
        let seq: Vec<It> = vec![(0, 'H'), (4, 'W'), (11, 'H')];
        // H then H with gap <= 3: the only H pair is 11 slots apart.
        assert!(!contains_subsequence_with_gap(
            &[(0, 'H'), (0, 'H')],
            &seq,
            3,
            time,
            eq
        ));
        // Gap 11 allows it.
        assert!(contains_subsequence_with_gap(
            &[(0, 'H'), (0, 'H')],
            &seq,
            11,
            time,
            eq
        ));
    }

    #[test]
    fn gap_dp_finds_nongreedy_embedding() {
        // Pattern W,E. Greedy would match W@0 then need E within gap 2
        // (fails: E@6). The valid embedding is W@4, E@6.
        let seq: Vec<It> = vec![(0, 'W'), (4, 'W'), (6, 'E')];
        assert!(contains_subsequence_with_gap(
            &[(0, 'W'), (0, 'E')],
            &seq,
            2,
            time,
            eq
        ));
    }

    #[test]
    fn gap_empty_pattern_is_true() {
        let seq: Vec<It> = vec![(0, 'H')];
        assert!(contains_subsequence_with_gap(&[], &seq, 0, time, eq));
    }

    #[test]
    fn gap_zero_requires_same_slot() {
        let seq: Vec<It> = vec![(4, 'W'), (4, 'E'), (6, 'H')];
        assert!(contains_subsequence_with_gap(
            &[(0, 'W'), (0, 'E')],
            &seq,
            0,
            time,
            eq
        ));
        assert!(!contains_subsequence_with_gap(
            &[(0, 'E'), (0, 'H')],
            &seq,
            1,
            time,
            eq
        ));
        assert!(contains_subsequence_with_gap(
            &[(0, 'E'), (0, 'H')],
            &seq,
            2,
            time,
            eq
        ));
    }
}
