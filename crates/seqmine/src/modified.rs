//! The paper's *modified* PrefixSpan.
//!
//! Two changes over the classic algorithm, both reflecting how CrowdWeb
//! uses patterns:
//!
//! 1. **Timed items** — every item exposes a time index (CrowdWeb: the
//!    check-in's time-of-day slot) through a caller-supplied closure, so
//!    the miner works directly on `(slot, label)` visits.
//! 2. **Gap constraint** — an optional maximum slot gap between
//!    consecutive pattern items. With `max_gap = Some(g)`, a pattern
//!    embedding is valid only if each matched item occurs at most `g`
//!    slots after its predecessor. This keeps mined routines temporally
//!    coherent ("home, then eatery *around noon*") instead of splicing a
//!    breakfast onto a midnight snack. `None` recovers classic
//!    PrefixSpan exactly.
//!
//! The projection tracks *every* match end position per sequence (not
//! just the first), which is required for completeness under gap
//! constraints.

use crate::{MineError, Pattern, PatternSet};
use crowdweb_exec::{parallel_map, Parallelism};
use std::collections::HashMap;
use std::hash::Hash;

/// The modified PrefixSpan miner. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use crowdweb_seqmine::ModifiedPrefixSpan;
///
/// # fn main() -> Result<(), crowdweb_seqmine::MineError> {
/// // Daily visits as (slot, label) with 2-hour slots.
/// let days = vec![
///     vec![(3u32, 'H'), (6, 'E'), (11, 'H')],
///     vec![(3, 'H'), (6, 'E')],
///     vec![(3, 'H'), (11, 'H')],
/// ];
/// let miner = ModifiedPrefixSpan::new(0.6)?.max_gap(Some(4));
/// let patterns = miner.mine(&days, |it| it.0);
/// // "home at slot 3, eatery at slot 6" survives the gap constraint...
/// assert!(patterns.patterns.iter().any(|p| p.items == vec![(3, 'H'), (6, 'E')]));
/// // ...but "home slot 3, home slot 11" (gap 8) does not.
/// assert!(!patterns.patterns.iter().any(|p| p.items == vec![(3, 'H'), (11, 'H')]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModifiedPrefixSpan {
    min_support: f64,
    max_gap: Option<u32>,
    max_length: usize,
    parallelism: Parallelism,
}

impl ModifiedPrefixSpan {
    /// Creates a miner with a relative support threshold in `(0, 1]`
    /// and no gap constraint.
    ///
    /// # Errors
    ///
    /// Returns [`MineError::InvalidSupport`] for thresholds outside
    /// `(0, 1]`.
    pub fn new(min_support: f64) -> Result<ModifiedPrefixSpan, MineError> {
        if !(min_support.is_finite() && 0.0 < min_support && min_support <= 1.0) {
            return Err(MineError::InvalidSupport);
        }
        Ok(ModifiedPrefixSpan {
            min_support,
            max_gap: None,
            max_length: usize::MAX,
            parallelism: Parallelism::Sequential,
        })
    }

    /// Sets how top-level pattern branches are executed (default
    /// sequential). The mined set is identical under any policy.
    pub fn parallelism(mut self, parallelism: Parallelism) -> ModifiedPrefixSpan {
        self.parallelism = parallelism;
        self
    }

    /// Sets the maximum slot gap between consecutive pattern items
    /// (`None` disables the constraint).
    pub fn max_gap(mut self, max_gap: Option<u32>) -> ModifiedPrefixSpan {
        self.max_gap = max_gap;
        self
    }

    /// Caps the maximum pattern length.
    ///
    /// # Errors
    ///
    /// Returns [`MineError::InvalidMaxLength`] for zero.
    pub fn max_length(mut self, max_length: usize) -> Result<ModifiedPrefixSpan, MineError> {
        if max_length == 0 {
            return Err(MineError::InvalidMaxLength);
        }
        self.max_length = max_length;
        Ok(self)
    }

    /// The configured relative support threshold.
    pub fn min_support(&self) -> f64 {
        self.min_support
    }

    /// The configured gap constraint.
    pub fn gap(&self) -> Option<u32> {
        self.max_gap
    }

    /// The absolute support count needed over `db_len` sequences.
    pub fn absolute_threshold(&self, db_len: usize) -> usize {
        ((self.min_support * db_len as f64).ceil() as usize).max(1)
    }

    /// Mines all frequent patterns; `time_of` maps an item to its time
    /// index (slot). Accepts any slice-of-sequences shape
    /// (`Vec<Vec<T>>`, columnar `&[Symbol]` day slices, ...). Patterns
    /// come back sorted by `(length, items)`.
    pub fn mine<T, S, F>(&self, db: &[S], time_of: F) -> PatternSet<T>
    where
        T: Clone + Eq + Hash + Ord + Send + Sync,
        S: AsRef<[T]> + Sync,
        F: Fn(&T) -> u32 + Copy + Sync,
    {
        let threshold = self.absolute_threshold(db.len());
        // Frequent 1-items: with an empty prefix every position is a
        // valid extension, so count each distinct item once per
        // sequence.
        let mut counts: HashMap<&T, usize> = HashMap::new();
        for seq in db {
            let mut seen: Vec<&T> = Vec::new();
            for item in seq.as_ref() {
                if !seen.contains(&item) {
                    seen.push(item);
                    *counts.entry(item).or_insert(0) += 1;
                }
            }
        }
        let mut roots: Vec<(&T, usize)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= threshold)
            .collect();
        roots.sort_by(|a, b| a.0.cmp(b.0));
        let roots: Vec<(T, usize)> = roots
            .into_iter()
            .map(|(item, support)| (item.clone(), support))
            .collect();

        // Grow each root independently (all match ends are tracked, so
        // branches share nothing); the final sort makes the merge order
        // irrelevant.
        let branches = parallel_map(self.parallelism, &roots, |(item, support)| {
            let projection: Vec<(usize, Vec<usize>)> = db
                .iter()
                .enumerate()
                .filter_map(|(seq_idx, s)| {
                    let seq = s.as_ref();
                    let ends: Vec<usize> =
                        (0..seq.len()).filter(|&pos| seq[pos] == *item).collect();
                    (!ends.is_empty()).then_some((seq_idx, ends))
                })
                .collect();
            let mut prefix = vec![item.clone()];
            let mut out = vec![Pattern {
                items: prefix.clone(),
                support: *support,
            }];
            self.grow(db, &projection, threshold, time_of, &mut prefix, &mut out);
            out
        });
        let mut out: Vec<Pattern<T>> = branches.into_iter().flatten().collect();
        out.sort_by(|a, b| (a.len(), &a.items).cmp(&(b.len(), &b.items)));
        PatternSet {
            patterns: out,
            db_size: db.len(),
        }
    }

    fn grow<T, S, F>(
        &self,
        db: &[S],
        projection: &[(usize, Vec<usize>)],
        threshold: usize,
        time_of: F,
        prefix: &mut Vec<T>,
        out: &mut Vec<Pattern<T>>,
    ) where
        T: Clone + Eq + Hash + Ord,
        S: AsRef<[T]>,
        F: Fn(&T) -> u32 + Copy,
    {
        if prefix.len() >= self.max_length {
            return;
        }
        let first = prefix.is_empty();
        // Count candidate extension items, once per sequence.
        let mut counts: HashMap<&T, usize> = HashMap::new();
        for (seq_idx, ends) in projection {
            let seq = db[*seq_idx].as_ref();
            let mut seen: Vec<&T> = Vec::new();
            for (pos, item) in seq.iter().enumerate() {
                if self.valid_extension(seq, ends, pos, first, time_of) && !seen.contains(&item) {
                    seen.push(item);
                    *counts.entry(item).or_insert(0) += 1;
                }
            }
        }
        let mut frequent: Vec<(&T, usize)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= threshold)
            .collect();
        frequent.sort_by(|a, b| a.0.cmp(b.0));

        for (item, support) in frequent {
            let item = item.clone();
            let next: Vec<(usize, Vec<usize>)> = projection
                .iter()
                .filter_map(|(seq_idx, ends)| {
                    let seq = db[*seq_idx].as_ref();
                    let new_ends: Vec<usize> = (0..seq.len())
                        .filter(|&pos| {
                            seq[pos] == item && self.valid_extension(seq, ends, pos, first, time_of)
                        })
                        .collect();
                    (!new_ends.is_empty()).then_some((*seq_idx, new_ends))
                })
                .collect();
            prefix.push(item);
            out.push(Pattern {
                items: prefix.clone(),
                support,
            });
            self.grow(db, &next, threshold, time_of, prefix, out);
            prefix.pop();
        }
    }

    /// Whether position `pos` of `seq` can extend a prefix whose last
    /// item matched at one of `ends`.
    fn valid_extension<T, F>(
        &self,
        seq: &[T],
        ends: &[usize],
        pos: usize,
        first: bool,
        time_of: F,
    ) -> bool
    where
        F: Fn(&T) -> u32,
    {
        if first {
            return true;
        }
        let t = time_of(&seq[pos]);
        ends.iter().any(|&e| {
            e < pos
                && match self.max_gap {
                    None => true,
                    Some(g) => {
                        let pt = time_of(&seq[e]);
                        t >= pt && t - pt <= g
                    }
                }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{contains_subsequence_with_gap, PrefixSpan};
    use proptest::prelude::*;

    type It = (u32, char);
    fn time(it: &It) -> u32 {
        it.0
    }

    fn db() -> Vec<Vec<It>> {
        vec![
            vec![(3, 'H'), (4, 'W'), (6, 'E'), (11, 'H')],
            vec![(3, 'H'), (6, 'E'), (11, 'H')],
            vec![(3, 'H'), (4, 'W'), (11, 'H')],
        ]
    }

    #[test]
    fn no_gap_matches_classic_prefixspan() {
        let modified = ModifiedPrefixSpan::new(0.5).unwrap().mine(&db(), time);
        let classic = PrefixSpan::new(0.5).unwrap().mine(&db());
        assert_eq!(modified.patterns, classic.patterns);
    }

    #[test]
    fn gap_constraint_prunes_distant_pairs() {
        let unconstrained = ModifiedPrefixSpan::new(0.6).unwrap().mine(&db(), time);
        let constrained = ModifiedPrefixSpan::new(0.6)
            .unwrap()
            .max_gap(Some(3))
            .mine(&db(), time);
        // (3,H)->(11,H) has gap 8: present without constraint, absent with.
        let pair = vec![(3, 'H'), (11, 'H')];
        assert!(unconstrained.patterns.iter().any(|p| p.items == pair));
        assert!(!constrained.patterns.iter().any(|p| p.items == pair));
        // (3,H)->(6,E) has gap 3: survives.
        assert!(constrained
            .patterns
            .iter()
            .any(|p| p.items == vec![(3, 'H'), (6, 'E')]));
        assert!(constrained.len() < unconstrained.len());
    }

    #[test]
    fn gap_counts_use_all_embeddings() {
        // Pattern (0,a)(1,a): greedy first-match projection would bind
        // a@0 then fail the gap to a@5; the valid embedding is a@4, a@5.
        let db: Vec<Vec<It>> = vec![vec![(0, 'a'), (4, 'a'), (5, 'a')]];
        let set = ModifiedPrefixSpan::new(1.0)
            .unwrap()
            .max_gap(Some(1))
            .mine(&db, time);
        assert!(
            set.patterns
                .iter()
                .any(|p| p.items == vec![(4, 'a'), (5, 'a')]),
            "{:?}",
            set.patterns
        );
    }

    #[test]
    fn supports_agree_with_containment_oracle() {
        let miner = ModifiedPrefixSpan::new(0.3).unwrap().max_gap(Some(4));
        let set = miner.mine(&db(), time);
        for p in &set.patterns {
            let actual = db()
                .iter()
                .filter(|s| contains_subsequence_with_gap(&p.items, s, 4, time, |a, b| a == b))
                .count();
            assert_eq!(actual, p.support, "pattern {:?}", p.items);
        }
    }

    #[test]
    fn monotone_in_support_threshold() {
        let mut prev = usize::MAX;
        for s in [0.25, 0.5, 0.75, 1.0] {
            let n = ModifiedPrefixSpan::new(s)
                .unwrap()
                .max_gap(Some(4))
                .mine(&db(), time)
                .len();
            assert!(n <= prev);
            prev = n;
        }
    }

    #[test]
    fn max_length_and_validation() {
        assert!(ModifiedPrefixSpan::new(0.0).is_err());
        assert!(ModifiedPrefixSpan::new(2.0).is_err());
        let set = ModifiedPrefixSpan::new(0.3)
            .unwrap()
            .max_length(1)
            .unwrap()
            .mine(&db(), time);
        assert_eq!(set.max_length(), 1);
        assert!(ModifiedPrefixSpan::new(0.3).unwrap().max_length(0).is_err());
    }

    #[test]
    fn empty_database_yields_empty_set() {
        let set = ModifiedPrefixSpan::new(0.5)
            .unwrap()
            .mine(&Vec::<Vec<It>>::new(), time);
        assert!(set.is_empty());
    }

    proptest! {
        #[test]
        fn prop_no_gap_equals_classic(
            db in proptest::collection::vec(
                proptest::collection::vec((0u32..8, 0u8..3), 0..6), 0..8),
        ) {
            let modified = ModifiedPrefixSpan::new(0.4).unwrap()
                .mine(&db, |it| it.0);
            let classic = PrefixSpan::new(0.4).unwrap().mine(&db);
            prop_assert_eq!(modified.patterns, classic.patterns);
        }

        #[test]
        fn prop_gap_set_is_subset_of_unconstrained(
            db in proptest::collection::vec(
                proptest::collection::vec((0u32..8, 0u8..3), 0..6), 0..8),
            gap in 0u32..4,
        ) {
            let constrained = ModifiedPrefixSpan::new(0.4).unwrap()
                .max_gap(Some(gap)).mine(&db, |it| it.0);
            let free = ModifiedPrefixSpan::new(0.4).unwrap()
                .mine(&db, |it| it.0);
            for p in &constrained.patterns {
                let in_free = free.patterns.iter()
                    .find(|q| q.items == p.items)
                    .map(|q| q.support);
                // Same pattern must exist unconstrained with >= support.
                prop_assert!(in_free.is_some_and(|s| s >= p.support),
                    "pattern {:?}", p.items);
            }
        }

        #[test]
        fn prop_supports_match_oracle(
            db in proptest::collection::vec(
                proptest::collection::vec((0u32..6, 0u8..3), 0..5), 0..7),
            gap in 0u32..3,
        ) {
            let miner = ModifiedPrefixSpan::new(0.5).unwrap().max_gap(Some(gap));
            let set = miner.mine(&db, |it| it.0);
            for p in &set.patterns {
                let actual = db.iter().filter(|s| contains_subsequence_with_gap(
                    &p.items, s, gap, |it| it.0, |a, b| a == b)).count();
                prop_assert_eq!(actual, p.support, "pattern {:?}", p.items);
            }
        }
    }
}
