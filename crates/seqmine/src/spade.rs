//! SPADE-style vertical sequential pattern mining (Zaki, 2001).
//!
//! Where PrefixSpan grows patterns by projecting the horizontal
//! database, SPADE works on *id-lists*: for each pattern, the list of
//! `(sequence, position)` pairs where it can end. Extending a pattern
//! by an item is a temporal join of id-lists — no database rescan.
//!
//! Same pattern semantics as [`crate::PrefixSpan`] (subsequence
//! containment, support = number of sequences containing the pattern),
//! so the two are property-tested equal. Included as a second
//! independent implementation and ablation point.

use crate::{MineError, Pattern, PatternSet};
use crowdweb_exec::{parallel_map, Parallelism};
use std::collections::BTreeMap;
use std::hash::Hash;

/// The vertical-format SPADE miner.
///
/// # Examples
///
/// ```
/// use crowdweb_seqmine::{PrefixSpan, Spade};
///
/// # fn main() -> Result<(), crowdweb_seqmine::MineError> {
/// let db = vec![vec![1, 2, 3], vec![1, 3], vec![2, 3]];
/// assert_eq!(
///     Spade::new(0.5)?.mine(&db).patterns,
///     PrefixSpan::new(0.5)?.mine(&db).patterns,
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spade {
    min_support: f64,
    max_length: usize,
    parallelism: Parallelism,
}

/// An id-list: for each containing sequence, every position where the
/// pattern can end.
type IdList = Vec<(usize, Vec<usize>)>;

impl Spade {
    /// Creates a miner with a relative support threshold in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`MineError::InvalidSupport`] for thresholds outside
    /// `(0, 1]`.
    pub fn new(min_support: f64) -> Result<Spade, MineError> {
        if !(min_support.is_finite() && 0.0 < min_support && min_support <= 1.0) {
            return Err(MineError::InvalidSupport);
        }
        Ok(Spade {
            min_support,
            max_length: usize::MAX,
            parallelism: Parallelism::Sequential,
        })
    }

    /// Sets how top-level item branches are executed (default
    /// sequential). The mined set is identical under any policy.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Spade {
        self.parallelism = parallelism;
        self
    }

    /// Caps the maximum pattern length.
    ///
    /// # Errors
    ///
    /// Returns [`MineError::InvalidMaxLength`] for zero.
    pub fn max_length(mut self, max_length: usize) -> Result<Spade, MineError> {
        if max_length == 0 {
            return Err(MineError::InvalidMaxLength);
        }
        self.max_length = max_length;
        Ok(self)
    }

    /// The absolute support count needed over `db_len` sequences.
    pub fn absolute_threshold(&self, db_len: usize) -> usize {
        ((self.min_support * db_len as f64).ceil() as usize).max(1)
    }

    /// Mines all frequent sequential patterns via id-list joins. Each
    /// frequent item's branch joins independently, so branches fan out
    /// on the shared pool under [`Spade::parallelism`].
    pub fn mine<T, S>(&self, db: &[S]) -> PatternSet<T>
    where
        T: Clone + Eq + Hash + Ord + Send + Sync,
        S: AsRef<[T]> + Sync,
    {
        let threshold = self.absolute_threshold(db.len());

        // Build the level-1 id-lists.
        let mut item_lists: BTreeMap<&T, IdList> = BTreeMap::new();
        for (seq_idx, seq) in db.iter().enumerate() {
            for (pos, item) in seq.as_ref().iter().enumerate() {
                let list = item_lists.entry(item).or_default();
                match list.last_mut() {
                    Some((s, positions)) if *s == seq_idx => positions.push(pos),
                    _ => list.push((seq_idx, vec![pos])),
                }
            }
        }
        item_lists.retain(|_, list| list.len() >= threshold);
        let frequent_items: Vec<(T, IdList)> = item_lists
            .into_iter()
            .map(|(item, list)| (item.clone(), list))
            .collect();

        let branches = parallel_map(self.parallelism, &frequent_items, |(item, list)| {
            let mut prefix = vec![item.clone()];
            let mut out = vec![Pattern {
                items: prefix.clone(),
                support: list.len(),
            }];
            self.grow(&frequent_items, list, threshold, &mut prefix, &mut out);
            out
        });
        let mut out: Vec<Pattern<T>> = branches.into_iter().flatten().collect();
        out.sort_by(|a, b| (a.len(), &a.items).cmp(&(b.len(), &b.items)));
        PatternSet {
            patterns: out,
            db_size: db.len(),
        }
    }

    fn grow<T>(
        &self,
        frequent_items: &[(T, IdList)],
        prefix_list: &IdList,
        threshold: usize,
        prefix: &mut Vec<T>,
        out: &mut Vec<Pattern<T>>,
    ) where
        T: Clone + Eq + Hash + Ord,
    {
        if prefix.len() >= self.max_length {
            return;
        }
        for (item, item_list) in frequent_items {
            let joined = temporal_join(prefix_list, item_list);
            if joined.len() >= threshold {
                prefix.push(item.clone());
                out.push(Pattern {
                    items: prefix.clone(),
                    support: joined.len(),
                });
                self.grow(frequent_items, &joined, threshold, prefix, out);
                prefix.pop();
            }
        }
    }
}

/// Temporal join: positions of `item` occurring strictly after some end
/// position of the prefix, per shared sequence.
fn temporal_join(prefix: &IdList, item: &IdList) -> IdList {
    let mut out: IdList = Vec::new();
    let mut i = 0;
    let mut j = 0;
    while i < prefix.len() && j < item.len() {
        let (ps, p_positions) = &prefix[i];
        let (is, i_positions) = &item[j];
        match ps.cmp(is) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Earliest prefix end in this sequence.
                let min_end = p_positions[0];
                let after: Vec<usize> = i_positions
                    .iter()
                    .copied()
                    .filter(|&p| p > min_end)
                    .collect();
                if !after.is_empty() {
                    out.push((*ps, after));
                }
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrefixSpan;
    use proptest::prelude::*;

    #[test]
    fn validation() {
        assert!(Spade::new(0.0).is_err());
        assert!(Spade::new(1.5).is_err());
        assert!(Spade::new(0.5).unwrap().max_length(0).is_err());
    }

    #[test]
    fn agrees_with_prefixspan_on_example() {
        let db = vec![
            vec!['a', 'b', 'c'],
            vec!['a', 'c'],
            vec!['a', 'b'],
            vec!['b', 'c'],
        ];
        let spade = Spade::new(0.5).unwrap().mine(&db);
        let ps = PrefixSpan::new(0.5).unwrap().mine(&db);
        assert_eq!(spade.patterns, ps.patterns);
    }

    #[test]
    fn repeated_items_join_correctly() {
        // <a, a> occurs in seq 0 but not seq 1.
        let db = vec![vec!['a', 'b', 'a'], vec!['a', 'b']];
        let spade = Spade::new(0.5).unwrap().mine(&db);
        let aa = spade
            .patterns
            .iter()
            .find(|p| p.items == vec!['a', 'a'])
            .unwrap();
        assert_eq!(aa.support, 1);
    }

    #[test]
    fn empty_database() {
        assert!(Spade::new(0.5)
            .unwrap()
            .mine(&Vec::<Vec<u8>>::new())
            .is_empty());
    }

    #[test]
    fn max_length_caps() {
        let db = vec![vec![1, 2, 3]; 2];
        let set = Spade::new(1.0).unwrap().max_length(2).unwrap().mine(&db);
        assert_eq!(set.max_length(), 2);
    }

    proptest! {
        #[test]
        fn prop_spade_equals_prefixspan(
            db in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 0..7), 0..9),
            sup_pct in 1u8..=4,
        ) {
            let s = f64::from(sup_pct) * 0.25;
            let spade = Spade::new(s).unwrap().max_length(4).unwrap().mine(&db);
            let ps = PrefixSpan::new(s).unwrap().max_length(4).unwrap().mine(&db);
            prop_assert_eq!(spade.patterns, ps.patterns);
        }
    }
}
