//! Sequential pattern mining for CrowdWeb.
//!
//! Given a *sequence database* — for CrowdWeb, one sequence per day of a
//! user's abstracted visits — sequential pattern mining finds every
//! subsequence whose *support* (the fraction of database sequences
//! containing it) meets a threshold.
//!
//! Three miners are provided:
//!
//! - [`PrefixSpan`] — the classic pattern-growth algorithm of Pei et al.
//!   with pseudo-projection ([`prefixspan`]).
//! - [`ModifiedPrefixSpan`] — the paper's variant ([`modified`]): items
//!   carry a time index (the check-in's time slot) and embeddings may be
//!   constrained by a maximum slot gap between consecutive pattern items,
//!   so "home in the morning, eatery at noon" does not match a pair of
//!   visits twelve hours apart unless allowed to.
//! - [`Gsp`] — the generate-and-test GSP baseline ([`gsp`]), used by the
//!   ablation benchmark to show why pattern-growth wins.
//!
//! All miners are generic over the item type and deterministic: patterns
//! come back sorted.
//!
//! # Examples
//!
//! ```
//! use crowdweb_seqmine::PrefixSpan;
//!
//! # fn main() -> Result<(), crowdweb_seqmine::MineError> {
//! // Three days of visits; 'H' = home, 'W' = work, 'E' = eatery.
//! let days = vec![
//!     vec!['H', 'W', 'E', 'H'],
//!     vec!['H', 'E', 'H'],
//!     vec!['H', 'W', 'H'],
//! ];
//! let patterns = PrefixSpan::new(1.0)?.mine(&days);
//! // "H ... H" appears in every day.
//! assert!(patterns.iter().any(|p| p.items == vec!['H', 'H']));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed;
pub mod error;
pub mod gsp;
pub mod matcher;
pub mod maximal;
pub mod modified;
pub mod pattern;
pub mod prefixspan;
pub mod spade;
pub mod subseq;

pub use closed::closed_patterns;
pub use error::MineError;
pub use gsp::Gsp;
pub use matcher::{matching_databases, relative_support_in, support_in};
pub use maximal::{maximal_patterns, top_k_patterns};
pub use modified::ModifiedPrefixSpan;
pub use pattern::{Pattern, PatternSet};
pub use prefixspan::PrefixSpan;
pub use spade::Spade;
pub use subseq::{contains_subsequence, contains_subsequence_with_gap};
