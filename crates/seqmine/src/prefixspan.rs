//! Classic PrefixSpan (Pei et al., TKDE 2004) with pseudo-projection.
//!
//! Pattern growth: find frequent single items, then for each, project
//! the database onto suffixes after the item's first occurrence and
//! recurse. Pseudo-projection stores `(sequence index, start offset)`
//! pairs instead of copying suffixes.

use crate::{MineError, Pattern, PatternSet};
use crowdweb_exec::{parallel_map, Parallelism};
use std::collections::HashMap;
use std::hash::Hash;

/// The classic PrefixSpan miner.
///
/// Support is *relative*: a pattern qualifies if it occurs in at least
/// `ceil(min_support * db_len)` sequences (and at least one).
///
/// Each frequent 1-item roots an independent pattern-growth branch;
/// under [`PrefixSpan::parallelism`] those branches fan out on the
/// shared pool and merge deterministically (the final `(length, items)`
/// sort is a total order, since a pattern's support is a function of
/// its items).
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixSpan {
    min_support: f64,
    max_length: usize,
    parallelism: Parallelism,
}

impl PrefixSpan {
    /// Creates a miner with a relative support threshold in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`MineError::InvalidSupport`] for thresholds outside
    /// `(0, 1]`.
    pub fn new(min_support: f64) -> Result<PrefixSpan, MineError> {
        if !(min_support.is_finite() && 0.0 < min_support && min_support <= 1.0) {
            return Err(MineError::InvalidSupport);
        }
        Ok(PrefixSpan {
            min_support,
            max_length: usize::MAX,
            parallelism: Parallelism::Sequential,
        })
    }

    /// Caps the maximum pattern length.
    ///
    /// # Errors
    ///
    /// Returns [`MineError::InvalidMaxLength`] for zero.
    pub fn max_length(mut self, max_length: usize) -> Result<PrefixSpan, MineError> {
        if max_length == 0 {
            return Err(MineError::InvalidMaxLength);
        }
        self.max_length = max_length;
        Ok(self)
    }

    /// Sets how top-level pattern branches are executed (default
    /// sequential). The mined set is identical under any policy.
    pub fn parallelism(mut self, parallelism: Parallelism) -> PrefixSpan {
        self.parallelism = parallelism;
        self
    }

    /// The configured relative support threshold.
    pub fn min_support(&self) -> f64 {
        self.min_support
    }

    /// The absolute support count a pattern needs over a database of
    /// `db_len` sequences.
    pub fn absolute_threshold(&self, db_len: usize) -> usize {
        ((self.min_support * db_len as f64).ceil() as usize).max(1)
    }

    /// Mines all frequent sequential patterns of the database (any
    /// slice-of-sequences shape: `Vec<Vec<T>>`, `Vec<&[T]>`, the
    /// columnar day slices, ...). Patterns are returned sorted by
    /// `(length, items)`.
    pub fn mine<T, S>(&self, db: &[S]) -> PatternSet<T>
    where
        T: Clone + Eq + Hash + Ord + Send + Sync,
        S: AsRef<[T]> + Sync,
    {
        let threshold = self.absolute_threshold(db.len());
        // Frequent 1-items, counted once per sequence.
        let mut counts: HashMap<&T, usize> = HashMap::new();
        for seq in db {
            let mut seen: Vec<&T> = Vec::new();
            for item in seq.as_ref() {
                if !seen.contains(&item) {
                    seen.push(item);
                    *counts.entry(item).or_insert(0) += 1;
                }
            }
        }
        let mut roots: Vec<(&T, usize)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= threshold)
            .collect();
        roots.sort_by(|a, b| a.0.cmp(b.0));
        let roots: Vec<(T, usize)> = roots
            .into_iter()
            .map(|(item, support)| (item.clone(), support))
            .collect();

        // Each root grows independently; results merge in root order
        // and the final sort fixes the global order either way.
        let branches = parallel_map(self.parallelism, &roots, |(item, support)| {
            let projection: Vec<(usize, usize)> = db
                .iter()
                .enumerate()
                .filter_map(|(seq, s)| {
                    s.as_ref()
                        .iter()
                        .position(|x| x == item)
                        .map(|off| (seq, off + 1))
                })
                .collect();
            let mut prefix = vec![item.clone()];
            let mut out = vec![Pattern {
                items: prefix.clone(),
                support: *support,
            }];
            grow(
                db,
                &projection,
                threshold,
                self.max_length,
                &mut prefix,
                &mut out,
            );
            out
        });
        let mut out: Vec<Pattern<T>> = branches.into_iter().flatten().collect();
        out.sort_by(|a, b| (a.len(), &a.items).cmp(&(b.len(), &b.items)));
        PatternSet {
            patterns: out,
            db_size: db.len(),
        }
    }
}

/// Recursive pattern growth over a pseudo-projected database.
fn grow<T, S>(
    db: &[S],
    projection: &[(usize, usize)],
    threshold: usize,
    max_length: usize,
    prefix: &mut Vec<T>,
    out: &mut Vec<Pattern<T>>,
) where
    T: Clone + Eq + Hash + Ord,
    S: AsRef<[T]>,
{
    if prefix.len() >= max_length {
        return;
    }
    // Count each candidate item once per projected sequence.
    let mut counts: HashMap<&T, usize> = HashMap::new();
    for &(seq, start) in projection {
        let mut seen: Vec<&T> = Vec::new();
        for item in &db[seq].as_ref()[start..] {
            if !seen.contains(&item) {
                seen.push(item);
                *counts.entry(item).or_insert(0) += 1;
            }
        }
    }
    let mut frequent: Vec<(&T, usize)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= threshold)
        .collect();
    frequent.sort_by(|a, b| a.0.cmp(b.0));

    for (item, support) in frequent {
        let item = item.clone();
        // Project: first occurrence of `item` at or after each start.
        let next: Vec<(usize, usize)> = projection
            .iter()
            .filter_map(|&(seq, start)| {
                db[seq].as_ref()[start..]
                    .iter()
                    .position(|x| *x == item)
                    .map(|off| (seq, start + off + 1))
            })
            .collect();
        prefix.push(item);
        out.push(Pattern {
            items: prefix.clone(),
            support,
        });
        grow(db, &next, threshold, max_length, prefix, out);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contains_subsequence;
    use proptest::prelude::*;

    fn db() -> Vec<Vec<char>> {
        vec![
            vec!['a', 'b', 'c'],
            vec!['a', 'c'],
            vec!['a', 'b'],
            vec!['b', 'c'],
        ]
    }

    #[test]
    fn new_validates_support() {
        assert!(PrefixSpan::new(0.0).is_err());
        assert!(PrefixSpan::new(-0.5).is_err());
        assert!(PrefixSpan::new(1.5).is_err());
        assert!(PrefixSpan::new(f64::NAN).is_err());
        assert!(PrefixSpan::new(1.0).is_ok());
        assert!(PrefixSpan::new(0.001).is_ok());
    }

    #[test]
    fn absolute_threshold_rounds_up() {
        let m = PrefixSpan::new(0.5).unwrap();
        assert_eq!(m.absolute_threshold(4), 2);
        assert_eq!(m.absolute_threshold(5), 3);
        assert_eq!(m.absolute_threshold(0), 1);
    }

    #[test]
    fn mines_known_patterns() {
        // Support counts over db(): a=3, b=3, c=3, ab=2, ac=2, bc=2, abc=1.
        let set = PrefixSpan::new(0.5).unwrap().mine(&db());
        let items: Vec<(Vec<char>, usize)> = set
            .patterns
            .iter()
            .map(|p| (p.items.clone(), p.support))
            .collect();
        assert_eq!(
            items,
            vec![
                (vec!['a'], 3),
                (vec!['b'], 3),
                (vec!['c'], 3),
                (vec!['a', 'b'], 2),
                (vec!['a', 'c'], 2),
                (vec!['b', 'c'], 2),
            ]
        );
    }

    #[test]
    fn support_one_includes_everything() {
        let set = PrefixSpan::new(0.25).unwrap().mine(&db());
        assert!(set
            .patterns
            .iter()
            .any(|p| p.items == vec!['a', 'b', 'c'] && p.support == 1));
    }

    #[test]
    fn full_support_restricts_hard() {
        let set = PrefixSpan::new(1.0).unwrap().mine(&db());
        // No single item appears in all 4 sequences.
        assert!(set.is_empty());
    }

    #[test]
    fn empty_database() {
        let set = PrefixSpan::new(0.5).unwrap().mine(&Vec::<Vec<char>>::new());
        assert!(set.is_empty());
        assert_eq!(set.db_size, 0);
    }

    #[test]
    fn repeated_items_in_sequence_count_once() {
        let db = vec![vec!['a', 'a', 'a'], vec!['b']];
        let set = PrefixSpan::new(0.5).unwrap().mine(&db);
        let a = set.patterns.iter().find(|p| p.items == vec!['a']).unwrap();
        assert_eq!(a.support, 1);
        // But <a, a> is still a pattern with support 1 at threshold 0.5.
        assert!(set.patterns.iter().any(|p| p.items == vec!['a', 'a']));
    }

    #[test]
    fn max_length_caps_growth() {
        let set = PrefixSpan::new(0.25)
            .unwrap()
            .max_length(1)
            .unwrap()
            .mine(&db());
        assert_eq!(set.max_length(), 1);
        assert!(PrefixSpan::new(0.5).unwrap().max_length(0).is_err());
    }

    #[test]
    fn monotone_in_support() {
        // Raising min_support can only shrink the pattern set — the
        // exact trend of the paper's Figure 5.
        let mut prev = usize::MAX;
        for s in [0.25, 0.5, 0.75, 1.0] {
            let n = PrefixSpan::new(s).unwrap().mine(&db()).len();
            assert!(n <= prev, "support {s} grew: {n} > {prev}");
            prev = n;
        }
    }

    /// Brute-force reference miner: enumerate all subsequences up to
    /// length 3 and count support directly.
    fn brute_force(db: &[Vec<u8>], threshold: usize) -> Vec<(Vec<u8>, usize)> {
        use std::collections::BTreeSet;
        let alphabet: BTreeSet<u8> = db.iter().flatten().copied().collect();
        let mut candidates: Vec<Vec<u8>> = alphabet.iter().map(|&a| vec![a]).collect();
        for _ in 0..2 {
            let mut next = Vec::new();
            for c in &candidates {
                for &a in &alphabet {
                    let mut n = c.clone();
                    n.push(a);
                    next.push(n);
                }
            }
            candidates.extend(next);
        }
        candidates.sort();
        candidates.dedup();
        candidates
            .into_iter()
            .filter_map(|c| {
                let sup = db.iter().filter(|s| contains_subsequence(&c, s)).count();
                (sup >= threshold).then_some((c, sup))
            })
            .collect()
    }

    proptest! {
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 0..6), 0..8),
            sup_pct in 1u8..=4,
        ) {
            let min_support = f64::from(sup_pct) * 0.25;
            let miner = PrefixSpan::new(min_support).unwrap()
                .max_length(3).unwrap();
            let mined = miner.mine(&db);
            let threshold = miner.absolute_threshold(db.len());
            let expected = brute_force(&db, threshold);
            let got: Vec<(Vec<u8>, usize)> = mined
                .patterns
                .iter()
                .map(|p| (p.items.clone(), p.support))
                .collect();
            let mut got_sorted = got.clone();
            got_sorted.sort();
            prop_assert_eq!(got_sorted, expected);
        }

        #[test]
        fn prop_every_pattern_has_claimed_support(
            db in proptest::collection::vec(
                proptest::collection::vec(0u8..5, 0..8), 0..10),
        ) {
            let mined = PrefixSpan::new(0.3).unwrap().mine(&db);
            for p in &mined.patterns {
                let actual = db.iter()
                    .filter(|s| contains_subsequence(&p.items, s))
                    .count();
                prop_assert_eq!(actual, p.support, "pattern {:?}", p.items);
            }
        }
    }
}
