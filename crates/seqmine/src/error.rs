//! Error type for mining configuration.

use std::error::Error;
use std::fmt;

/// Error produced by miner constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MineError {
    /// `min_support` outside `(0, 1]`.
    InvalidSupport,
    /// `max_length` of zero.
    InvalidMaxLength,
}

impl fmt::Display for MineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MineError::InvalidSupport => {
                write!(f, "min_support must be in (0, 1]")
            }
            MineError::InvalidMaxLength => write!(f, "max_length must be positive"),
        }
    }
}

impl Error for MineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MineError>();
        assert!(!MineError::InvalidSupport.to_string().is_empty());
    }
}
