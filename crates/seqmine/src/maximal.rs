//! Maximal patterns and top-k selection.
//!
//! - A frequent pattern is *maximal* if no frequent super-pattern
//!   exists at all (stricter than closed: support is ignored). Maximal
//!   sets are the most compact summary of what a user does.
//! - [`top_k_patterns`] ranks patterns by `(support, length)` — the
//!   platform's "strongest habits first" list.

use crate::{contains_subsequence, Pattern, PatternSet};

/// Filters a mined set down to its maximal patterns: those with no
/// strict super-pattern in the set.
///
/// # Examples
///
/// ```
/// use crowdweb_seqmine::{maximal_patterns, PrefixSpan};
///
/// # fn main() -> Result<(), crowdweb_seqmine::MineError> {
/// let db = vec![vec!['a', 'b'], vec!['a', 'b']];
/// let mined = PrefixSpan::new(1.0)?.mine(&db);
/// let maximal = maximal_patterns(&mined);
/// // Only <a, b> is maximal; <a> and <b> are subsumed.
/// assert_eq!(maximal.len(), 1);
/// assert_eq!(maximal.patterns[0].items, vec!['a', 'b']);
/// # Ok(())
/// # }
/// ```
pub fn maximal_patterns<T>(set: &PatternSet<T>) -> PatternSet<T>
where
    T: Clone + PartialEq,
{
    let survivors: Vec<Pattern<T>> = set
        .patterns
        .iter()
        .filter(|p| {
            !set.patterns
                .iter()
                .any(|q| q.len() > p.len() && contains_subsequence(&p.items, &q.items))
        })
        .cloned()
        .collect();
    PatternSet {
        patterns: survivors,
        db_size: set.db_size,
    }
}

/// The `k` strongest patterns, ranked by support (descending), then
/// length (descending — longer is more informative at equal support),
/// then items (ascending, for determinism).
pub fn top_k_patterns<T>(set: &PatternSet<T>, k: usize) -> Vec<Pattern<T>>
where
    T: Clone + Ord,
{
    let mut ranked: Vec<Pattern<T>> = set.patterns.clone();
    ranked.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(b.len().cmp(&a.len()))
            .then(a.items.cmp(&b.items))
    });
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrefixSpan;
    use proptest::prelude::*;

    #[test]
    fn maximal_keeps_only_unsubsumed() {
        let db = vec![vec!['a', 'b', 'c'], vec!['a', 'b'], vec!['a', 'c']];
        let mined = PrefixSpan::new(0.3).unwrap().mine(&db);
        let maximal = maximal_patterns(&mined);
        // <a,b,c> subsumes everything that is frequent at 0.3 support
        // except patterns not contained in it (none here: every mined
        // pattern is a subsequence of abc).
        assert_eq!(maximal.len(), 1);
        assert_eq!(maximal.patterns[0].items, vec!['a', 'b', 'c']);
    }

    #[test]
    fn maximal_keeps_incomparable_patterns() {
        let db = vec![vec!['a', 'b'], vec!['a', 'b'], vec!['c', 'a']];
        let mined = PrefixSpan::new(0.6).unwrap().mine(&db);
        let maximal = maximal_patterns(&mined);
        // <a, b> is maximal; <c> (if frequent) would be too — at 0.6
        // threshold (2 of 3) only a and b and <a,b> qualify.
        assert!(maximal.patterns.iter().any(|p| p.items == vec!['a', 'b']));
        assert!(!maximal.patterns.iter().any(|p| p.items == vec!['a']));
    }

    #[test]
    fn top_k_orders_by_support_then_length() {
        let db = vec![vec!['a', 'b'], vec!['a', 'b'], vec!['a'], vec!['c']];
        let mined = PrefixSpan::new(0.25).unwrap().mine(&db);
        let top = top_k_patterns(&mined, 3);
        assert_eq!(top.len(), 3);
        // <a> support 3 first.
        assert_eq!(top[0].items, vec!['a']);
        // Then support-2 patterns, longer first: <a, b> before <b>.
        assert_eq!(top[1].items, vec!['a', 'b']);
        assert_eq!(top[2].items, vec!['b']);
    }

    #[test]
    fn top_k_handles_small_sets() {
        let empty: PatternSet<u8> = PatternSet {
            patterns: vec![],
            db_size: 0,
        };
        assert!(top_k_patterns(&empty, 5).is_empty());
        assert!(maximal_patterns(&empty).is_empty());
    }

    proptest! {
        #[test]
        fn prop_maximal_is_subset_and_covers(
            db in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 0..6), 1..8),
        ) {
            let mined = PrefixSpan::new(0.3).unwrap().mine(&db);
            let maximal = maximal_patterns(&mined);
            // Subset.
            for p in &maximal.patterns {
                prop_assert!(mined.patterns.contains(p));
            }
            // Coverage: every mined pattern is a subsequence of some
            // maximal one.
            for p in &mined.patterns {
                prop_assert!(maximal.patterns.iter().any(
                    |q| contains_subsequence(&p.items, &q.items)));
            }
            // Antichain: no maximal pattern strictly contains another.
            for p in &maximal.patterns {
                for q in &maximal.patterns {
                    if p.len() < q.len() {
                        prop_assert!(!contains_subsequence(&p.items, &q.items)
                            || p.items == q.items);
                    }
                }
            }
        }
    }
}
