//! Closed-pattern post-filtering.
//!
//! A frequent pattern is *closed* if no super-pattern has the same
//! support. Closed patterns carry all the support information of the
//! full set in (often far) fewer patterns; CrowdWeb's UI uses them to
//! declutter the per-user pattern list.

use crate::{contains_subsequence, Pattern, PatternSet};

/// Filters a mined set down to its closed patterns.
///
/// A pattern is dropped iff some *other* pattern in the set strictly
/// contains it (as a subsequence, with greater length) and has the same
/// support. Since frequent-pattern sets are downward closed, filtering
/// against the mined set itself is sufficient.
///
/// # Examples
///
/// ```
/// use crowdweb_seqmine::{closed_patterns, PrefixSpan};
///
/// # fn main() -> Result<(), crowdweb_seqmine::MineError> {
/// let db = vec![vec!['a', 'b'], vec!['a', 'b'], vec!['a', 'c']];
/// let mined = PrefixSpan::new(0.5)?.mine(&db);
/// let closed = closed_patterns(&mined);
/// // <b> (support 2) is absorbed by <a, b> (support 2);
/// // <a> (support 3) survives because no super-pattern has support 3.
/// assert!(closed.patterns.iter().any(|p| p.items == vec!['a']));
/// assert!(!closed.patterns.iter().any(|p| p.items == vec!['b']));
/// # Ok(())
/// # }
/// ```
pub fn closed_patterns<T>(set: &PatternSet<T>) -> PatternSet<T>
where
    T: Clone + PartialEq,
{
    let survivors: Vec<Pattern<T>> = set
        .patterns
        .iter()
        .filter(|p| {
            !set.patterns.iter().any(|q| {
                q.support == p.support
                    && q.len() > p.len()
                    && contains_subsequence(&p.items, &q.items)
            })
        })
        .cloned()
        .collect();
    PatternSet {
        patterns: survivors,
        db_size: set.db_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrefixSpan;
    use proptest::prelude::*;

    #[test]
    fn keeps_maximal_support_distinct_patterns() {
        let db = vec![vec!['a', 'b', 'c'], vec!['a', 'b'], vec!['a', 'c']];
        let mined = PrefixSpan::new(0.3).unwrap().mine(&db);
        let closed = closed_patterns(&mined);
        // <a> support 3 has no equal-support super-pattern: closed.
        assert!(closed.patterns.iter().any(|p| p.items == vec!['a']));
        // <b> support 2 is contained in <a,b> support 2: not closed.
        assert!(!closed.patterns.iter().any(|p| p.items == vec!['b']));
        // <a,b,c> support 1 is maximal: closed.
        assert!(closed
            .patterns
            .iter()
            .any(|p| p.items == vec!['a', 'b', 'c']));
        assert!(closed.len() < mined.len());
    }

    #[test]
    fn empty_set_stays_empty() {
        let empty: PatternSet<char> = PatternSet {
            patterns: vec![],
            db_size: 0,
        };
        assert!(closed_patterns(&empty).is_empty());
    }

    proptest! {
        #[test]
        fn prop_closed_preserves_support_information(
            db in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 0..6), 1..8),
        ) {
            let mined = PrefixSpan::new(0.3).unwrap().mine(&db);
            let closed = closed_patterns(&mined);
            // Every mined pattern must have a closed super-pattern (or
            // itself) with identical support.
            for p in &mined.patterns {
                let covered = closed.patterns.iter().any(|q| {
                    q.support == p.support
                        && contains_subsequence(&p.items, &q.items)
                });
                prop_assert!(covered, "pattern {:?} lost", p.items);
            }
            // And closed is a subset of mined.
            for q in &closed.patterns {
                prop_assert!(mined.patterns.contains(q));
            }
        }
    }
}
