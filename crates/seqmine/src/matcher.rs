//! Pattern matching across sequence databases — "who shares this
//! routine?".
//!
//! Given a mined pattern, the matcher finds every database (user) whose
//! sequences support it at a threshold. This is the inverse of mining
//! and powers CrowdWeb's group-by-pattern view: pick a pattern, see the
//! crowd that lives by it.

use crate::contains_subsequence;

/// Support of `pattern` in one sequence database: the number of
/// sequences containing it.
pub fn support_in<T: PartialEq>(pattern: &[T], db: &[Vec<T>]) -> usize {
    db.iter()
        .filter(|seq| contains_subsequence(pattern, seq))
        .count()
}

/// Relative support of `pattern` in a database (0.0 for an empty
/// database).
pub fn relative_support_in<T: PartialEq>(pattern: &[T], db: &[Vec<T>]) -> f64 {
    if db.is_empty() {
        0.0
    } else {
        support_in(pattern, db) as f64 / db.len() as f64
    }
}

/// Finds which of several databases (e.g. users' daily-sequence sets)
/// support `pattern` at relative support `>= min_support`. Returns
/// `(database index, absolute support)` pairs in input order.
///
/// # Examples
///
/// ```
/// use crowdweb_seqmine::matcher::matching_databases;
///
/// let alice = vec![vec!['H', 'E'], vec!['H', 'E']];
/// let bob = vec![vec!['H', 'W'], vec!['H', 'E']];
/// let hits = matching_databases(&['H', 'E'], &[&alice, &bob], 0.75);
/// assert_eq!(hits, vec![(0, 2)]); // only Alice has it on 75%+ of days
/// ```
pub fn matching_databases<T: PartialEq>(
    pattern: &[T],
    databases: &[&Vec<Vec<T>>],
    min_support: f64,
) -> Vec<(usize, usize)> {
    databases
        .iter()
        .enumerate()
        .filter_map(|(i, db)| {
            let support = support_in(pattern, db);
            let relative = if db.is_empty() {
                0.0
            } else {
                support as f64 / db.len() as f64
            };
            (relative >= min_support && support > 0).then_some((i, support))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn support_counting() {
        let db = vec![vec![1, 2, 3], vec![1, 3], vec![2, 1]];
        assert_eq!(support_in(&[1, 3], &db), 2);
        assert_eq!(support_in(&[3, 1], &db), 0);
        // The empty pattern is contained everywhere.
        assert_eq!(support_in::<i32>(&[], &db), 3);
    }

    #[test]
    fn relative_support_edge_cases() {
        let empty: Vec<Vec<u8>> = vec![];
        assert_eq!(relative_support_in(&[1u8], &empty), 0.0);
        let db = vec![vec![1u8], vec![2]];
        assert_eq!(relative_support_in(&[1u8], &db), 0.5);
    }

    #[test]
    fn matching_respects_threshold() {
        let a = vec![vec![1, 2], vec![1, 2], vec![3]];
        let b = vec![vec![1, 2]];
        let c = vec![vec![3, 4]];
        // a: 2/3 ~ 0.67 and b: 1/1 pass at 0.6; c has no occurrence.
        let hits = matching_databases(&[1, 2], &[&a, &b, &c], 0.6);
        assert_eq!(hits, vec![(0, 2), (1, 1)]);
        // At 0.7, a falls below the threshold.
        let strict = matching_databases(&[1, 2], &[&a, &b, &c], 0.7);
        assert_eq!(strict, vec![(1, 1)]);
        // Empty databases never match.
        let empty: Vec<Vec<i32>> = vec![];
        assert!(matching_databases(&[1], &[&empty], 0.0).is_empty());
    }

    proptest! {
        #[test]
        fn prop_mined_patterns_match_their_own_db(
            db in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 1..5), 1..6),
        ) {
            let mined = crate::PrefixSpan::new(0.5).unwrap().mine(&db);
            for p in &mined.patterns {
                prop_assert_eq!(support_in(&p.items, &db), p.support);
                let hits = matching_databases(&p.items, &[&db], 0.5);
                prop_assert_eq!(hits, vec![(0usize, p.support)]);
            }
        }
    }
}
