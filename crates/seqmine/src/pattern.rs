//! Mined patterns and pattern sets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A mined sequential pattern with its absolute support count.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pattern<T> {
    /// The pattern's items, in order.
    pub items: Vec<T>,
    /// Number of database sequences containing the pattern.
    pub support: usize,
}

impl<T> Pattern<T> {
    /// Pattern length in items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pattern is empty (never produced by the miners).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Support as a fraction of `db_size` sequences (0 if `db_size` is
    /// 0).
    pub fn relative_support(&self, db_size: usize) -> f64 {
        if db_size == 0 {
            0.0
        } else {
            self.support as f64 / db_size as f64
        }
    }
}

impl<T: fmt::Display> fmt::Display for Pattern<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "> x{}", self.support)
    }
}

/// The result of one mining run: the patterns plus the database size
/// they were mined from (so relative supports stay interpretable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternSet<T> {
    /// Mined patterns, sorted by (length, items).
    pub patterns: Vec<Pattern<T>>,
    /// Number of sequences in the mined database.
    pub db_size: usize,
}

impl<T> PatternSet<T> {
    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether no patterns were found.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Mean pattern length in items (0 for an empty set) — the quantity
    /// of the paper's Figure 7.
    pub fn mean_length(&self) -> f64 {
        if self.patterns.is_empty() {
            return 0.0;
        }
        self.patterns.iter().map(Pattern::len).sum::<usize>() as f64 / self.patterns.len() as f64
    }

    /// The longest pattern length (0 for an empty set).
    pub fn max_length(&self) -> usize {
        self.patterns.iter().map(Pattern::len).max().unwrap_or(0)
    }

    /// Iterator over all patterns in sorted order.
    pub fn iter(&self) -> std::slice::Iter<'_, Pattern<T>> {
        self.patterns.iter()
    }

    /// Iterator over patterns of exactly `len` items.
    pub fn of_length(&self, len: usize) -> impl Iterator<Item = &Pattern<T>> {
        self.patterns.iter().filter(move |p| p.len() == len)
    }

    /// Maps every pattern item through `f`, keeping supports and order.
    ///
    /// Used to decode symbol-mined pattern sets back to their source
    /// items; when `f` is monotone (symbol tables interned in sorted
    /// order), the `(length, items)` sort is preserved.
    pub fn map_items<U>(self, mut f: impl FnMut(&T) -> U) -> PatternSet<U> {
        PatternSet {
            patterns: self
                .patterns
                .into_iter()
                .map(|p| Pattern {
                    items: p.items.iter().map(&mut f).collect(),
                    support: p.support,
                })
                .collect(),
            db_size: self.db_size,
        }
    }
}

impl<T> IntoIterator for PatternSet<T> {
    type Item = Pattern<T>;
    type IntoIter = std::vec::IntoIter<Pattern<T>>;

    fn into_iter(self) -> Self::IntoIter {
        self.patterns.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a PatternSet<T> {
    type Item = &'a Pattern<T>;
    type IntoIter = std::slice::Iter<'a, Pattern<T>>;

    fn into_iter(self) -> Self::IntoIter {
        self.patterns.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> PatternSet<char> {
        PatternSet {
            patterns: vec![
                Pattern {
                    items: vec!['a'],
                    support: 3,
                },
                Pattern {
                    items: vec!['b'],
                    support: 2,
                },
                Pattern {
                    items: vec!['a', 'b'],
                    support: 2,
                },
            ],
            db_size: 4,
        }
    }

    #[test]
    fn relative_support() {
        let p = Pattern {
            items: vec!['a'],
            support: 3,
        };
        assert_eq!(p.relative_support(4), 0.75);
        assert_eq!(p.relative_support(0), 0.0);
    }

    #[test]
    fn mean_and_max_length() {
        let s = set();
        assert!((s.mean_length() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_length(), 2);
        let empty: PatternSet<char> = PatternSet {
            patterns: vec![],
            db_size: 0,
        };
        assert_eq!(empty.mean_length(), 0.0);
        assert_eq!(empty.max_length(), 0);
    }

    #[test]
    fn of_length_filters() {
        let s = set();
        assert_eq!(s.of_length(1).count(), 2);
        assert_eq!(s.of_length(2).count(), 1);
        assert_eq!(s.of_length(3).count(), 0);
    }

    #[test]
    fn display_format() {
        let p = Pattern {
            items: vec!['a', 'b'],
            support: 2,
        };
        assert_eq!(p.to_string(), "<a, b> x2");
    }

    #[test]
    fn iteration() {
        let s = set();
        assert_eq!((&s).into_iter().count(), 3);
        assert_eq!(s.into_iter().count(), 3);
    }
}
