//! Error types for the dataset crate.

use crate::{UserId, VenueId};
use std::error::Error;
use std::fmt;
use std::io;

/// Error produced by dataset construction, parsing, and time math.
#[derive(Debug)]
pub enum DatasetError {
    /// Calendar date with out-of-range month or day.
    InvalidDate {
        /// Year supplied.
        year: i32,
        /// Month supplied.
        month: u8,
        /// Day supplied.
        day: u8,
    },
    /// Time of day with out-of-range hour/minute/second.
    InvalidTimeOfDay {
        /// Hour supplied.
        hour: u8,
        /// Minute supplied.
        minute: u8,
        /// Second supplied.
        second: u8,
    },
    /// Category name not present in the taxonomy.
    UnknownCategory(String),
    /// A check-in referenced a venue that was never added.
    UnknownVenue {
        /// The dangling venue id.
        venue: VenueId,
        /// The user whose check-in referenced it.
        user: UserId,
    },
    /// Two venues registered with the same id.
    DuplicateVenue(VenueId),
    /// A TSV line that could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Underlying I/O failure while reading or writing a dataset file.
    Io(io::Error),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidDate { year, month, day } => {
                write!(f, "invalid calendar date {year:04}-{month:02}-{day:02}")
            }
            DatasetError::InvalidTimeOfDay {
                hour,
                minute,
                second,
            } => write!(f, "invalid time of day {hour:02}:{minute:02}:{second:02}"),
            DatasetError::UnknownCategory(name) => write!(f, "unknown category {name:?}"),
            DatasetError::UnknownVenue { venue, user } => {
                write!(f, "check-in by {user} references unknown venue {venue}")
            }
            DatasetError::DuplicateVenue(id) => write!(f, "venue {id} registered twice"),
            DatasetError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            DatasetError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        DatasetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DatasetError>();
    }

    #[test]
    fn io_source_is_chained() {
        let err = DatasetError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(err.source().is_some());
    }

    #[test]
    fn display_messages_are_lowercase() {
        let err = DatasetError::InvalidDate {
            year: 2013,
            month: 2,
            day: 30,
        };
        assert_eq!(err.to_string(), "invalid calendar date 2013-02-30");
    }
}
