//! Venue category taxonomy.
//!
//! CrowdWeb's key idea is to abstract raw venues into *place labels* so
//! that flexible behaviour ("a different Thai place every lunch") still
//! forms a detectable pattern. The taxonomy is two-level, mirroring
//! Foursquare's: fine-grained named categories ("Thai Restaurant") roll
//! up into nine coarse [`CategoryKind`]s ("Eatery") that the paper uses
//! as pattern items.

use crate::{CategoryId, DatasetError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Coarse place label — the item alphabet of CrowdWeb's mobility
/// patterns. Mirrors Foursquare's nine root categories, with the naming
/// the paper uses ("Eatery", "Shops").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CategoryKind {
    /// Museums, theatres, stadiums, music venues.
    ArtsEntertainment,
    /// Campuses, lecture halls, libraries.
    CollegeUniversity,
    /// Restaurants, cafés, food in general ("Eatery" in the paper).
    Eatery,
    /// Bars, clubs, lounges.
    NightlifeSpot,
    /// Parks, playgrounds, gyms, trails.
    OutdoorsRecreation,
    /// Offices and other workplaces.
    Professional,
    /// Homes and residential buildings.
    Residence,
    /// Shops and services ("Shops" in the paper).
    Shops,
    /// Stations, airports, transport infrastructure.
    TravelTransport,
}

impl CategoryKind {
    /// All nine kinds, in a stable order.
    pub const ALL: [CategoryKind; 9] = [
        CategoryKind::ArtsEntertainment,
        CategoryKind::CollegeUniversity,
        CategoryKind::Eatery,
        CategoryKind::NightlifeSpot,
        CategoryKind::OutdoorsRecreation,
        CategoryKind::Professional,
        CategoryKind::Residence,
        CategoryKind::Shops,
        CategoryKind::TravelTransport,
    ];

    /// Human-readable label, matching the paper's figures where they name
    /// one ("Eatery", "Shops").
    pub fn label(self) -> &'static str {
        match self {
            CategoryKind::ArtsEntertainment => "Arts & Entertainment",
            CategoryKind::CollegeUniversity => "College & University",
            CategoryKind::Eatery => "Eatery",
            CategoryKind::NightlifeSpot => "Nightlife Spot",
            CategoryKind::OutdoorsRecreation => "Outdoors & Recreation",
            CategoryKind::Professional => "Professional & Other Places",
            CategoryKind::Residence => "Residence",
            CategoryKind::Shops => "Shops",
            CategoryKind::TravelTransport => "Travel & Transport",
        }
    }

    /// Best-effort mapping from an arbitrary category name (as found in
    /// the real Foursquare TSV, which has hundreds of fine names) to a
    /// coarse kind, via keyword matching. Unrecognized names map to
    /// [`CategoryKind::Professional`], Foursquare's own catch-all root.
    ///
    /// # Examples
    ///
    /// ```
    /// use crowdweb_dataset::CategoryKind;
    ///
    /// assert_eq!(CategoryKind::guess("Ramen / Noodle House"), CategoryKind::Eatery);
    /// assert_eq!(CategoryKind::guess("Dive Bar"), CategoryKind::NightlifeSpot);
    /// ```
    pub fn guess(name: &str) -> CategoryKind {
        let n = name.to_ascii_lowercase();
        let any = |words: &[&str]| words.iter().any(|w| n.contains(w));
        if any(&[
            "restaurant",
            "food",
            "café",
            "cafe",
            "coffee",
            "bakery",
            "diner",
            "pizza",
            "burger",
            "sandwich",
            "deli",
            "bodega",
            "noodle",
            "ramen",
            "bbq",
            "steak",
            "sushi",
            "taco",
            "breakfast",
            "dessert",
            "ice cream",
            "tea ",
            "juice",
            "bagel",
            "donut",
            "snack",
        ]) {
            CategoryKind::Eatery
        } else if any(&[
            "bar",
            "pub",
            "club",
            "brewery",
            "lounge",
            "speakeasy",
            "nightlife",
        ]) {
            CategoryKind::NightlifeSpot
        } else if any(&[
            "store",
            "shop",
            "market",
            "mall",
            "pharmacy",
            "drugstore",
            "boutique",
            "salon",
            "barber",
            "laundry",
            "bank",
            "atm",
        ]) {
            CategoryKind::Shops
        } else if any(&[
            "park",
            "gym",
            "fitness",
            "playground",
            "beach",
            "trail",
            "pool",
            "field",
            "garden",
            "plaza",
            "outdoor",
            "river",
            "harbor",
            "scenic",
        ]) {
            CategoryKind::OutdoorsRecreation
        } else if any(&[
            "station", "airport", "train", "subway", "bus", "ferry", "travel", "hotel", "road",
            "bridge", "terminal", "taxi", "pier",
        ]) {
            CategoryKind::TravelTransport
        } else if any(&[
            "college",
            "university",
            "school",
            "academic",
            "dorm",
            "campus",
        ]) {
            CategoryKind::CollegeUniversity
        } else if any(&[
            "home",
            "residential",
            "apartment",
            "housing",
            "residence",
            "building (",
        ]) {
            CategoryKind::Residence
        } else if any(&[
            "museum", "theater", "theatre", "cinema", "movie", "gallery", "stadium", "arena",
            "music", "concert", "zoo", "aquarium", "comedy", "arcade", "casino", "art",
        ]) {
            CategoryKind::ArtsEntertainment
        } else {
            CategoryKind::Professional
        }
    }

    /// Stable dense index in `[0, 9)`, usable for array-backed counters.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|k| *k == self)
            .expect("every kind is in ALL")
    }
}

impl fmt::Display for CategoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A named fine-grained venue category belonging to one coarse kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Category {
    id: CategoryId,
    name: String,
    kind: CategoryKind,
}

impl Category {
    /// Identifier within the owning taxonomy.
    pub fn id(&self) -> CategoryId {
        self.id
    }

    /// Fine-grained name, e.g. `"Thai Restaurant"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Coarse kind, e.g. [`CategoryKind::Eatery`].
    pub fn kind(&self) -> CategoryKind {
        self.kind
    }
}

/// The category taxonomy: fine categories, their kinds, and name lookup.
///
/// # Examples
///
/// ```
/// use crowdweb_dataset::{CategoryKind, Taxonomy};
///
/// # fn main() -> Result<(), crowdweb_dataset::DatasetError> {
/// let tax = Taxonomy::foursquare();
/// let id = tax.require("Thai Restaurant")?;
/// assert_eq!(tax.kind_of(id), Some(CategoryKind::Eatery));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Taxonomy {
    categories: Vec<Category>,
    #[serde(skip)]
    by_name: HashMap<String, CategoryId>,
}

/// The built-in Foursquare-like category list: `(name, kind)`.
const FOURSQUARE_CATEGORIES: &[(&str, CategoryKind)] = &[
    // Arts & Entertainment
    ("Art Gallery", CategoryKind::ArtsEntertainment),
    ("Movie Theater", CategoryKind::ArtsEntertainment),
    ("Museum", CategoryKind::ArtsEntertainment),
    ("Music Venue", CategoryKind::ArtsEntertainment),
    ("Stadium", CategoryKind::ArtsEntertainment),
    ("Theater", CategoryKind::ArtsEntertainment),
    ("Zoo", CategoryKind::ArtsEntertainment),
    // College & University
    ("College Academic Building", CategoryKind::CollegeUniversity),
    ("College Library", CategoryKind::CollegeUniversity),
    ("University", CategoryKind::CollegeUniversity),
    ("Student Center", CategoryKind::CollegeUniversity),
    // Eatery
    ("American Restaurant", CategoryKind::Eatery),
    ("Bakery", CategoryKind::Eatery),
    ("Burger Joint", CategoryKind::Eatery),
    ("Chinese Restaurant", CategoryKind::Eatery),
    ("Coffee Shop", CategoryKind::Eatery),
    ("Deli / Bodega", CategoryKind::Eatery),
    ("Diner", CategoryKind::Eatery),
    ("Fast Food Restaurant", CategoryKind::Eatery),
    ("Food Truck", CategoryKind::Eatery),
    ("Italian Restaurant", CategoryKind::Eatery),
    ("Japanese Restaurant", CategoryKind::Eatery),
    ("Mexican Restaurant", CategoryKind::Eatery),
    ("Pizza Place", CategoryKind::Eatery),
    ("Sandwich Place", CategoryKind::Eatery),
    ("Thai Restaurant", CategoryKind::Eatery),
    // Nightlife
    ("Bar", CategoryKind::NightlifeSpot),
    ("Cocktail Bar", CategoryKind::NightlifeSpot),
    ("Nightclub", CategoryKind::NightlifeSpot),
    ("Pub", CategoryKind::NightlifeSpot),
    ("Speakeasy", CategoryKind::NightlifeSpot),
    // Outdoors & Recreation
    ("Beach", CategoryKind::OutdoorsRecreation),
    ("Gym / Fitness Center", CategoryKind::OutdoorsRecreation),
    ("Park", CategoryKind::OutdoorsRecreation),
    ("Playground", CategoryKind::OutdoorsRecreation),
    ("Trail", CategoryKind::OutdoorsRecreation),
    // Professional & Other Places
    ("Conference Room", CategoryKind::Professional),
    ("Coworking Space", CategoryKind::Professional),
    ("Government Building", CategoryKind::Professional),
    ("Medical Center", CategoryKind::Professional),
    ("Office", CategoryKind::Professional),
    ("Tech Startup", CategoryKind::Professional),
    // Residence
    ("Apartment Building", CategoryKind::Residence),
    ("Home (private)", CategoryKind::Residence),
    ("Housing Development", CategoryKind::Residence),
    ("Residential Building", CategoryKind::Residence),
    // Shops
    ("Bookstore", CategoryKind::Shops),
    ("Clothing Store", CategoryKind::Shops),
    ("Convenience Store", CategoryKind::Shops),
    ("Department Store", CategoryKind::Shops),
    ("Drugstore / Pharmacy", CategoryKind::Shops),
    ("Electronics Store", CategoryKind::Shops),
    ("Grocery Store", CategoryKind::Shops),
    ("Mall", CategoryKind::Shops),
    ("Salon / Barbershop", CategoryKind::Shops),
    // Travel & Transport
    ("Airport", CategoryKind::TravelTransport),
    ("Bus Station", CategoryKind::TravelTransport),
    ("Ferry", CategoryKind::TravelTransport),
    ("Subway", CategoryKind::TravelTransport),
    ("Train Station", CategoryKind::TravelTransport),
];

impl Taxonomy {
    /// Creates an empty taxonomy.
    pub fn new() -> Taxonomy {
        Taxonomy::default()
    }

    /// The built-in Foursquare-like taxonomy (58 fine categories across
    /// the nine kinds).
    pub fn foursquare() -> Taxonomy {
        let mut tax = Taxonomy::new();
        for (name, kind) in FOURSQUARE_CATEGORIES {
            tax.register(name, *kind);
        }
        tax
    }

    /// Registers a category name under a kind, returning its id. If the
    /// name is already registered, the existing id is returned (the kind
    /// is not changed).
    pub fn register(&mut self, name: &str, kind: CategoryKind) -> CategoryId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = CategoryId::new(self.categories.len() as u32);
        self.categories.push(Category {
            id,
            name: name.to_owned(),
            kind,
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a category id by exact name.
    pub fn id_of(&self, name: &str) -> Option<CategoryId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a category id by exact name.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::UnknownCategory`] if the name is not
    /// registered.
    pub fn require(&self, name: &str) -> Result<CategoryId, DatasetError> {
        self.id_of(name)
            .ok_or_else(|| DatasetError::UnknownCategory(name.to_owned()))
    }

    /// The category with the given id, if any.
    pub fn get(&self, id: CategoryId) -> Option<&Category> {
        self.categories.get(id.index())
    }

    /// The coarse kind of a category id, if the id is known.
    pub fn kind_of(&self, id: CategoryId) -> Option<CategoryKind> {
        self.get(id).map(Category::kind)
    }

    /// The name of a category id, if the id is known.
    pub fn name_of(&self, id: CategoryId) -> Option<&str> {
        self.get(id).map(Category::name)
    }

    /// Number of registered categories.
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// Whether the taxonomy has no categories.
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty()
    }

    /// Iterator over all categories in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Category> {
        self.categories.iter()
    }

    /// All category ids of a given kind, in id order.
    pub fn ids_of_kind(&self, kind: CategoryKind) -> Vec<CategoryId> {
        self.categories
            .iter()
            .filter(|c| c.kind == kind)
            .map(Category::id)
            .collect()
    }

    /// Rebuilds the name index after deserialization (the index is not
    /// serialized). Call this after `serde` deserialization if you need
    /// name lookups.
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .categories
            .iter()
            .map(|c| (c.name.clone(), c.id))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn foursquare_has_all_kinds() {
        let tax = Taxonomy::foursquare();
        for kind in CategoryKind::ALL {
            assert!(
                !tax.ids_of_kind(kind).is_empty(),
                "kind {kind} has no categories"
            );
        }
        assert!(tax.len() >= 50);
    }

    #[test]
    fn register_is_idempotent() {
        let mut tax = Taxonomy::new();
        let a = tax.register("Thai Restaurant", CategoryKind::Eatery);
        let b = tax.register("Thai Restaurant", CategoryKind::Eatery);
        assert_eq!(a, b);
        assert_eq!(tax.len(), 1);
    }

    #[test]
    fn lookup_round_trip() {
        let tax = Taxonomy::foursquare();
        let id = tax.require("Coffee Shop").unwrap();
        assert_eq!(tax.name_of(id), Some("Coffee Shop"));
        assert_eq!(tax.kind_of(id), Some(CategoryKind::Eatery));
    }

    #[test]
    fn require_unknown_errors() {
        let tax = Taxonomy::foursquare();
        assert!(matches!(
            tax.require("Moon Base"),
            Err(DatasetError::UnknownCategory(_))
        ));
    }

    #[test]
    fn unknown_id_is_none() {
        let tax = Taxonomy::foursquare();
        assert!(tax.get(CategoryId::new(9999)).is_none());
        assert!(tax.kind_of(CategoryId::new(9999)).is_none());
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let tax = Taxonomy::foursquare();
        for (i, cat) in tax.iter().enumerate() {
            assert_eq!(cat.id().index(), i);
        }
    }

    #[test]
    fn kind_index_is_dense() {
        for (i, kind) in CategoryKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn paper_labels_present() {
        assert_eq!(CategoryKind::Eatery.label(), "Eatery");
        assert_eq!(CategoryKind::Shops.label(), "Shops");
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let tax = Taxonomy::foursquare();
        let mut clone = Taxonomy {
            categories: tax.categories.clone(),
            by_name: HashMap::new(),
        };
        assert!(clone.id_of("Coffee Shop").is_none());
        clone.rebuild_index();
        assert_eq!(clone.id_of("Coffee Shop"), tax.id_of("Coffee Shop"));
    }
}
