//! Venues — the physical places users check in at.

use crate::{CategoryId, VenueId};
use crowdweb_geo::LatLon;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A check-in location: a named place with a coordinate and a category.
///
/// # Examples
///
/// ```
/// use crowdweb_dataset::{CategoryId, Venue, VenueId};
/// use crowdweb_geo::LatLon;
///
/// # fn main() -> Result<(), crowdweb_geo::GeoError> {
/// let v = Venue::new(
///     VenueId::new(1),
///     "Thai Express",
///     LatLon::new(40.75, -73.99)?,
///     CategoryId::new(14),
/// );
/// assert_eq!(v.name(), "Thai Express");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Venue {
    id: VenueId,
    name: String,
    location: LatLon,
    category: CategoryId,
}

impl Venue {
    /// Creates a venue.
    pub fn new(id: VenueId, name: &str, location: LatLon, category: CategoryId) -> Venue {
        Venue {
            id,
            name: name.to_owned(),
            location,
            category,
        }
    }

    /// The venue's identifier.
    pub fn id(&self) -> VenueId {
        self.id
    }

    /// The venue's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The venue's coordinate.
    pub fn location(&self) -> LatLon {
        self.location
    }

    /// The venue's fine-grained category id.
    pub fn category(&self) -> CategoryId {
        self.category
    }
}

impl fmt::Display for Venue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:?} at {}", self.id, self.name, self.location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn venue() -> Venue {
        Venue::new(
            VenueId::new(9),
            "Seasoning Thai",
            LatLon::new(40.76, -73.98).unwrap(),
            CategoryId::new(2),
        )
    }

    #[test]
    fn accessors_return_fields() {
        let v = venue();
        assert_eq!(v.id(), VenueId::new(9));
        assert_eq!(v.name(), "Seasoning Thai");
        assert_eq!(v.category(), CategoryId::new(2));
        assert_eq!(v.location().lat(), 40.76);
    }

    #[test]
    fn display_mentions_id_and_name() {
        let s = venue().to_string();
        assert!(s.contains("v9"));
        assert!(s.contains("Seasoning Thai"));
    }
}
