//! Check-in records.

use crate::{Timestamp, UserId, VenueId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One GTSM check-in: a user reporting presence at a venue at a UTC
/// instant, with the submitter's local timezone offset in minutes (the
/// Foursquare TSV convention; New York EDT is `-240`).
///
/// # Examples
///
/// ```
/// use crowdweb_dataset::{CheckIn, Timestamp, UserId, VenueId};
///
/// # fn main() -> Result<(), crowdweb_dataset::DatasetError> {
/// let c = CheckIn::new(
///     UserId::new(7),
///     VenueId::new(1),
///     Timestamp::from_civil(2012, 4, 3, 18, 0, 9)?,
///     -240,
/// );
/// // Local civil time is what pattern mining uses.
/// assert_eq!(c.local_time().hour, 14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CheckIn {
    user: UserId,
    venue: VenueId,
    time: Timestamp,
    tz_offset_minutes: i32,
}

impl CheckIn {
    /// Creates a check-in record.
    pub fn new(user: UserId, venue: VenueId, time: Timestamp, tz_offset_minutes: i32) -> CheckIn {
        CheckIn {
            user,
            venue,
            time,
            tz_offset_minutes,
        }
    }

    /// The user who checked in.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The venue checked in at.
    pub fn venue(&self) -> VenueId {
        self.venue
    }

    /// The UTC instant of the check-in.
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// The submitter's timezone offset from UTC, in minutes.
    pub fn tz_offset_minutes(&self) -> i32 {
        self.tz_offset_minutes
    }

    /// The check-in's civil date and time in the submitter's local
    /// timezone — the time base for all pattern mining.
    pub fn local_time(&self) -> crate::CivilDateTime {
        self.time.to_civil_local(self.tz_offset_minutes)
    }

    /// The check-in's local calendar date.
    pub fn local_date(&self) -> crate::CivilDate {
        self.local_time().date
    }
}

impl fmt::Display for CheckIn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {} at {}", self.user, self.venue, self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkin() -> CheckIn {
        CheckIn::new(
            UserId::new(7),
            VenueId::new(1),
            Timestamp::from_civil(2012, 4, 4, 1, 30, 0).unwrap(),
            -240,
        )
    }

    #[test]
    fn local_date_can_differ_from_utc_date() {
        let c = checkin();
        assert_eq!(c.time().to_civil_utc().date.day(), 4);
        assert_eq!(c.local_date().day(), 3);
    }

    #[test]
    fn accessors() {
        let c = checkin();
        assert_eq!(c.user(), UserId::new(7));
        assert_eq!(c.venue(), VenueId::new(1));
        assert_eq!(c.tz_offset_minutes(), -240);
    }

    #[test]
    fn display_mentions_ids() {
        let s = checkin().to_string();
        assert!(s.contains("u7") && s.contains("v1"));
    }
}
