//! Reader and writer for the Foursquare `dataset_TSMC2014_NYC.txt` TSV
//! format, so the paper's real dataset drops in unchanged.
//!
//! Each line has eight tab-separated columns:
//!
//! ```text
//! user_id \t venue_id \t category_id \t category_name \t lat \t lon \t tz_offset_minutes \t utc_time
//! ```
//!
//! where `utc_time` looks like `Tue Apr 03 18:00:09 +0000 2012`. Venue
//! ids in the real file are opaque hex strings; the reader interns them
//! into dense [`VenueId`]s. Category names are interned into the
//! taxonomy, with coarse kinds guessed by keyword
//! ([`CategoryKind::guess`]).

use crate::category::CategoryKind;
use crate::{
    CheckIn, Dataset, DatasetBuilder, DatasetError, Timestamp, UserId, Venue, VenueId, Weekday,
};
use crowdweb_geo::LatLon;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

const MONTH_ABBREVS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Parses a Foursquare-style UTC time string such as
/// `Tue Apr 03 18:00:09 +0000 2012` into a [`Timestamp`].
///
/// The weekday token is ignored (it is redundant); the `±HHMM` offset is
/// applied so non-UTC strings are also handled.
///
/// # Errors
///
/// Returns [`DatasetError::Parse`] (with line number 0) on malformed
/// input.
///
/// # Examples
///
/// ```
/// use crowdweb_dataset::tsv::parse_time;
///
/// # fn main() -> Result<(), crowdweb_dataset::DatasetError> {
/// let t = parse_time("Tue Apr 03 18:00:09 +0000 2012")?;
/// assert_eq!(t.to_civil_utc().to_string(), "2012-04-03 18:00:09");
/// # Ok(())
/// # }
/// ```
pub fn parse_time(s: &str) -> Result<Timestamp, DatasetError> {
    let fail = |message: &str| DatasetError::Parse {
        line: 0,
        message: format!("{message} in time string {s:?}"),
    };
    let parts: Vec<&str> = s.split_whitespace().collect();
    if parts.len() != 6 {
        return Err(fail("expected 6 whitespace-separated tokens"));
    }
    let month = MONTH_ABBREVS
        .iter()
        .position(|m| *m == parts[1])
        .ok_or_else(|| fail("unknown month abbreviation"))? as u8
        + 1;
    let day: u8 = parts[2].parse().map_err(|_| fail("bad day"))?;
    let hms: Vec<&str> = parts[3].split(':').collect();
    if hms.len() != 3 {
        return Err(fail("bad time of day"));
    }
    let hour: u8 = hms[0].parse().map_err(|_| fail("bad hour"))?;
    let minute: u8 = hms[1].parse().map_err(|_| fail("bad minute"))?;
    let second: u8 = hms[2].parse().map_err(|_| fail("bad second"))?;
    let offset = parts[4];
    if offset.len() != 5 || !(offset.starts_with('+') || offset.starts_with('-')) {
        return Err(fail("bad offset"));
    }
    let off_h: i64 = offset[1..3].parse().map_err(|_| fail("bad offset hours"))?;
    let off_m: i64 = offset[3..5]
        .parse()
        .map_err(|_| fail("bad offset minutes"))?;
    let mut off_secs = (off_h * 60 + off_m) * 60;
    if offset.starts_with('-') {
        off_secs = -off_secs;
    }
    let year: i32 = parts[5].parse().map_err(|_| fail("bad year"))?;
    let local = Timestamp::from_civil(year, month, day, hour, minute, second)?;
    Ok(local.plus_seconds(-off_secs))
}

/// Formats a timestamp in the Foursquare style (always `+0000`).
pub fn format_time(t: Timestamp) -> String {
    let c = t.to_civil_utc();
    let wd: Weekday = c.date.weekday();
    format!(
        "{} {} {:02} {:02}:{:02}:{:02} +0000 {}",
        wd.abbrev(),
        MONTH_ABBREVS[usize::from(c.date.month()) - 1],
        c.date.day(),
        c.hour,
        c.minute,
        c.second,
        c.date.year(),
    )
}

/// Reads a dataset in TSMC2014 TSV format from any [`Read`]er (a `&mut`
/// reference works too, per the standard blanket impls).
///
/// Venue locations are taken from a venue's first occurrence; venue names
/// in this format are the opaque venue-id strings.
///
/// # Errors
///
/// Returns [`DatasetError::Parse`] with a 1-based line number on any
/// malformed line, [`DatasetError::Io`] on read failure, and the
/// builder's validation errors from [`DatasetBuilder::build`].
pub fn from_reader<R: Read>(reader: R) -> Result<Dataset, DatasetError> {
    let mut builder = Dataset::builder();
    let mut venue_ids: HashMap<String, VenueId> = HashMap::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        parse_line(&line, lineno, &mut builder, &mut venue_ids)?;
    }
    builder.build()
}

fn parse_line(
    line: &str,
    lineno: usize,
    builder: &mut DatasetBuilder,
    venue_ids: &mut HashMap<String, VenueId>,
) -> Result<(), DatasetError> {
    let fail = |message: String| DatasetError::Parse {
        line: lineno,
        message,
    };
    let cols: Vec<&str> = line.split('\t').collect();
    if cols.len() != 8 {
        return Err(fail(format!("expected 8 columns, found {}", cols.len())));
    }
    let user: u32 = cols[0]
        .trim()
        .parse()
        .map_err(|_| fail(format!("bad user id {:?}", cols[0])))?;
    let lat: f64 = cols[4]
        .trim()
        .parse()
        .map_err(|_| fail(format!("bad latitude {:?}", cols[4])))?;
    let lon: f64 = cols[5]
        .trim()
        .parse()
        .map_err(|_| fail(format!("bad longitude {:?}", cols[5])))?;
    let location = LatLon::new(lat, lon).map_err(|e| fail(e.to_string()))?;
    let tz: i32 = cols[6]
        .trim()
        .parse()
        .map_err(|_| fail(format!("bad timezone offset {:?}", cols[6])))?;
    let time = parse_time(cols[7].trim()).map_err(|e| fail(e.to_string()))?;

    let next_id = venue_ids.len() as u32;
    let mut is_new = false;
    let vid = *venue_ids
        .entry(cols[1].trim().to_owned())
        .or_insert_with(|| {
            is_new = true;
            VenueId::new(next_id)
        });
    if is_new {
        let cat_name = cols[3].trim();
        let kind = CategoryKind::guess(cat_name);
        let cat = builder.taxonomy_mut().register(cat_name, kind);
        builder.add_venue(Venue::new(vid, cols[1].trim(), location, cat));
    }
    builder.add_checkin(CheckIn::new(UserId::new(user), vid, time, tz));
    Ok(())
}

/// Reads a dataset from a TSV string.
///
/// # Errors
///
/// Same as [`from_reader`].
pub fn from_str(data: &str) -> Result<Dataset, DatasetError> {
    from_reader(data.as_bytes())
}

/// Loads a dataset from a TSV file on disk.
///
/// # Errors
///
/// Same as [`from_reader`], plus I/O errors opening the file.
pub fn load_path<P: AsRef<Path>>(path: P) -> Result<Dataset, DatasetError> {
    from_reader(std::fs::File::open(path)?)
}

/// Writes a dataset in TSMC2014 TSV format to any [`Write`]r (a `&mut`
/// reference works too).
///
/// # Errors
///
/// Returns [`DatasetError::Io`] on write failure.
pub fn to_writer<W: Write>(dataset: &Dataset, mut writer: W) -> Result<(), DatasetError> {
    for c in dataset.checkins() {
        let venue = dataset
            .venue(c.venue())
            .expect("dataset invariants guarantee venue exists");
        let cat_name = dataset
            .taxonomy()
            .name_of(venue.category())
            .unwrap_or("Unknown");
        writeln!(
            writer,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            c.user().raw(),
            venue.name(),
            venue.category().raw(),
            cat_name,
            venue.location().lat(),
            venue.location().lon(),
            c.tz_offset_minutes(),
            format_time(c.time()),
        )?;
    }
    Ok(())
}

/// Serializes a dataset to a TSV string.
pub fn to_string(dataset: &Dataset) -> String {
    let mut buf = Vec::new();
    to_writer(dataset, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("tsv output is ascii")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "470\t49bbd6c0f964a520f4531fe3\t4bf58dd8d48988d127951735\tArts & Crafts Store\t40.719810375488535\t-74.00258103213994\t-240\tTue Apr 03 18:00:09 +0000 2012\n\
1\t4a43c0aef964a520c6a61fe3\t4bf58dd8d48988d1df941735\tBridge\t40.60679958140643\t-74.04416981025437\t-240\tTue Apr 03 18:00:25 +0000 2012\n\
470\t4c5cc7b485a1e21e00d35711\t4bf58dd8d48988d103941735\tHome (private)\t40.716161684843215\t-73.88307005845945\t-240\tTue Apr 03 18:02:24 +0000 2012\n";

    #[test]
    fn parse_time_known_value() {
        let t = parse_time("Tue Apr 03 18:00:09 +0000 2012").unwrap();
        assert_eq!(t.unix_seconds(), 1_333_476_009);
    }

    #[test]
    fn parse_time_nonzero_offset() {
        // 18:00 at +0200 is 16:00 UTC.
        let t = parse_time("Tue Apr 03 18:00:00 +0200 2012").unwrap();
        assert_eq!(t.to_civil_utc().hour, 16);
        let t2 = parse_time("Tue Apr 03 18:00:00 -0430 2012").unwrap();
        assert_eq!(t2.to_civil_utc().hour, 22);
        assert_eq!(t2.to_civil_utc().minute, 30);
    }

    #[test]
    fn parse_time_rejects_garbage() {
        assert!(parse_time("not a time").is_err());
        assert!(parse_time("Tue Foo 03 18:00:09 +0000 2012").is_err());
        assert!(parse_time("Tue Apr 03 18:00 +0000 2012").is_err());
        assert!(parse_time("Tue Apr 03 18:00:09 0000 2012").is_err());
    }

    #[test]
    fn format_time_round_trips() {
        let t = Timestamp::from_civil(2012, 4, 3, 18, 0, 9).unwrap();
        let s = format_time(t);
        assert_eq!(s, "Tue Apr 03 18:00:09 +0000 2012");
        assert_eq!(parse_time(&s).unwrap(), t);
    }

    #[test]
    fn from_str_parses_sample() {
        let d = from_str(SAMPLE).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.user_count(), 2);
        assert_eq!(d.venue_count(), 3);
        let u470 = d.checkins_of(UserId::new(470));
        assert_eq!(u470.len(), 2);
        // Category guessing: "Arts & Crafts Store" contains "store" -> Shops.
        let v = d.venue(u470[0].venue()).unwrap();
        assert_eq!(
            d.taxonomy().kind_of(v.category()),
            Some(CategoryKind::Shops)
        );
    }

    #[test]
    fn venue_interning_reuses_ids() {
        let two_visits = "1\tvenueA\tx\tPark\t40.7\t-74.0\t-240\tTue Apr 03 10:00:00 +0000 2012\n\
2\tvenueA\tx\tPark\t40.7\t-74.0\t-240\tWed Apr 04 10:00:00 +0000 2012\n";
        let d = from_str(two_visits).unwrap();
        assert_eq!(d.venue_count(), 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn bad_line_reports_line_number() {
        let bad = "1\tonly\tthree\tcolumns\n";
        match from_str(bad) {
            Err(DatasetError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let with_blank = format!("\n{SAMPLE}\n\n");
        assert_eq!(from_str(&with_blank).unwrap().len(), 3);
    }

    #[test]
    fn round_trip_write_read() {
        let d = from_str(SAMPLE).unwrap();
        let out = to_string(&d);
        let d2 = from_str(&out).unwrap();
        assert_eq!(d2.len(), d.len());
        assert_eq!(d2.user_count(), d.user_count());
        assert_eq!(d2.venue_count(), d.venue_count());
        // Check-in times survive.
        let t1: Vec<i64> = d
            .checkins()
            .iter()
            .map(|c| c.time().unix_seconds())
            .collect();
        let t2: Vec<i64> = d2
            .checkins()
            .iter()
            .map(|c| c.time().unix_seconds())
            .collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn load_path_missing_file_is_io_error() {
        assert!(matches!(
            load_path("/nonexistent/definitely/missing.tsv"),
            Err(DatasetError::Io(_))
        ));
    }
}
