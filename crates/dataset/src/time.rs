//! UTC timestamps and civil-date math, implemented from scratch.
//!
//! Check-ins carry a UTC [`Timestamp`] plus the submitter's timezone
//! offset in minutes (as in the Foursquare TSV). All pattern mining runs
//! in the user's *local* civil time — "lunch at noon" must mean noon where
//! the user is — so the conversion lives here.
//!
//! The civil-calendar conversions use Howard Hinnant's `days_from_civil` /
//! `civil_from_days` algorithms, valid for the proleptic Gregorian
//! calendar over the entire `i32` year range.

use crate::DatasetError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Day of the week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Weekday {
    /// Monday.
    Mon,
    /// Tuesday.
    Tue,
    /// Wednesday.
    Wed,
    /// Thursday.
    Thu,
    /// Friday.
    Fri,
    /// Saturday.
    Sat,
    /// Sunday.
    Sun,
}

impl Weekday {
    /// All weekdays, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Mon,
        Weekday::Tue,
        Weekday::Wed,
        Weekday::Thu,
        Weekday::Fri,
        Weekday::Sat,
        Weekday::Sun,
    ];

    /// Whether this is Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Sat | Weekday::Sun)
    }

    /// Three-letter English abbreviation, as used in the Foursquare TSV.
    pub fn abbrev(self) -> &'static str {
        match self {
            Weekday::Mon => "Mon",
            Weekday::Tue => "Tue",
            Weekday::Wed => "Wed",
            Weekday::Thu => "Thu",
            Weekday::Fri => "Fri",
            Weekday::Sat => "Sat",
            Weekday::Sun => "Sun",
        }
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// A calendar date in the proleptic Gregorian calendar.
///
/// # Examples
///
/// ```
/// use crowdweb_dataset::{CivilDate, Weekday};
///
/// # fn main() -> Result<(), crowdweb_dataset::DatasetError> {
/// let d = CivilDate::new(2012, 4, 3)?;
/// assert_eq!(d.weekday(), Weekday::Tue);
/// assert_eq!(d.succ(), CivilDate::new(2012, 4, 4)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDate {
    year: i32,
    month: u8,
    day: u8,
}

/// Days in each month of a non-leap year.
const MONTH_DAYS: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Whether `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in the given month (1-12) of `year`, or 0 for an
/// invalid month.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    if !(1..=12).contains(&month) {
        return 0;
    }
    if month == 2 && is_leap_year(year) {
        29
    } else {
        MONTH_DAYS[usize::from(month) - 1]
    }
}

impl CivilDate {
    /// Creates a date, validating month and day ranges (leap years
    /// included).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidDate`] for out-of-range month/day.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, DatasetError> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(DatasetError::InvalidDate { year, month, day });
        }
        Ok(CivilDate { year, month, day })
    }

    /// Year component.
    pub fn year(self) -> i32 {
        self.year
    }

    /// Month component (1–12).
    pub fn month(self) -> u8 {
        self.month
    }

    /// Day component (1–31).
    pub fn day(self) -> u8 {
        self.day
    }

    /// Days since the epoch 1970-01-01 (negative before it).
    ///
    /// Hinnant's `days_from_civil`.
    pub fn to_epoch_days(self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = y.div_euclid(400);
        let yoe = y - era * 400; // [0, 399]
        let mp = (i64::from(self.month) + 9) % 12; // [0, 11], Mar=0
        let doy = (153 * mp + 2) / 5 + i64::from(self.day) - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// The date `days` after the epoch 1970-01-01.
    ///
    /// Hinnant's `civil_from_days`.
    pub fn from_epoch_days(days: i64) -> Self {
        let z = days + 719_468;
        let era = z.div_euclid(146_097);
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        CivilDate {
            year: (y + i64::from(m <= 2)) as i32,
            month: m,
            day: d,
        }
    }

    /// Day of the week of this date.
    pub fn weekday(self) -> Weekday {
        // 1970-01-01 was a Thursday; index Monday = 0.
        let idx = (self.to_epoch_days() + 3).rem_euclid(7) as usize;
        Weekday::ALL[idx]
    }

    /// The next calendar day.
    pub fn succ(self) -> CivilDate {
        CivilDate::from_epoch_days(self.to_epoch_days() + 1)
    }

    /// The previous calendar day.
    pub fn pred(self) -> CivilDate {
        CivilDate::from_epoch_days(self.to_epoch_days() - 1)
    }

    /// Signed number of days from `self` to `other`.
    pub fn days_until(self, other: CivilDate) -> i64 {
        other.to_epoch_days() - self.to_epoch_days()
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A civil date with a time of day (no timezone attached).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDateTime {
    /// Calendar date.
    pub date: CivilDate,
    /// Hour (0–23).
    pub hour: u8,
    /// Minute (0–59).
    pub minute: u8,
    /// Second (0–59).
    pub second: u8,
}

impl CivilDateTime {
    /// Seconds since local midnight.
    pub fn seconds_of_day(self) -> u32 {
        u32::from(self.hour) * 3600 + u32::from(self.minute) * 60 + u32::from(self.second)
    }
}

impl fmt::Display for CivilDateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:02}:{:02}:{:02}",
            self.date, self.hour, self.minute, self.second
        )
    }
}

/// A UTC instant as seconds since the Unix epoch.
///
/// # Examples
///
/// ```
/// use crowdweb_dataset::Timestamp;
///
/// # fn main() -> Result<(), crowdweb_dataset::DatasetError> {
/// let t = Timestamp::from_civil(2012, 4, 3, 18, 0, 9)?;
/// assert_eq!(t.to_civil_utc().to_string(), "2012-04-03 18:00:09");
/// // New York in April 2012 was UTC-4 (EDT): 2 pm local.
/// assert_eq!(t.to_civil_local(-240).hour, 14);
/// # Ok(())
/// # }
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp(i64);

impl Timestamp {
    /// Creates a timestamp from raw Unix seconds.
    pub fn from_unix_seconds(secs: i64) -> Self {
        Timestamp(secs)
    }

    /// Raw Unix seconds.
    pub fn unix_seconds(self) -> i64 {
        self.0
    }

    /// Creates a timestamp from a UTC civil date and time.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidDate`] for an invalid calendar date
    /// and [`DatasetError::InvalidTimeOfDay`] for an out-of-range time.
    pub fn from_civil(
        year: i32,
        month: u8,
        day: u8,
        hour: u8,
        minute: u8,
        second: u8,
    ) -> Result<Self, DatasetError> {
        let date = CivilDate::new(year, month, day)?;
        if hour > 23 || minute > 59 || second > 59 {
            return Err(DatasetError::InvalidTimeOfDay {
                hour,
                minute,
                second,
            });
        }
        Ok(Timestamp(
            date.to_epoch_days() * 86_400
                + i64::from(hour) * 3600
                + i64::from(minute) * 60
                + i64::from(second),
        ))
    }

    /// The UTC civil date and time of this instant.
    pub fn to_civil_utc(self) -> CivilDateTime {
        let days = self.0.div_euclid(86_400);
        let secs = self.0.rem_euclid(86_400);
        CivilDateTime {
            date: CivilDate::from_epoch_days(days),
            hour: (secs / 3600) as u8,
            minute: ((secs % 3600) / 60) as u8,
            second: (secs % 60) as u8,
        }
    }

    /// The civil date and time in a fixed-offset local timezone.
    ///
    /// `offset_minutes` is the local offset from UTC in minutes, positive
    /// east of Greenwich (New York EDT is `-240`), matching the Foursquare
    /// TSV convention.
    pub fn to_civil_local(self, offset_minutes: i32) -> CivilDateTime {
        Timestamp(self.0 + i64::from(offset_minutes) * 60).to_civil_utc()
    }

    /// A new timestamp shifted by `seconds`.
    pub fn plus_seconds(self, seconds: i64) -> Timestamp {
        Timestamp(self.0 + seconds)
    }

    /// Signed seconds from `self` to `other`.
    pub fn seconds_until(self, other: Timestamp) -> i64 {
        other.0 - self.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} UTC", self.to_civil_utc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_day_zero() {
        let d = CivilDate::new(1970, 1, 1).unwrap();
        assert_eq!(d.to_epoch_days(), 0);
        assert_eq!(d.weekday(), Weekday::Thu);
    }

    #[test]
    fn known_epoch_days() {
        // 2012-04-01 was 15431 days after the epoch.
        let d = CivilDate::new(2012, 4, 1).unwrap();
        assert_eq!(d.to_epoch_days(), 15_431);
        assert_eq!(CivilDate::from_epoch_days(15_431), d);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2012));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2013));
        assert_eq!(days_in_month(2012, 2), 29);
        assert_eq!(days_in_month(2013, 2), 28);
        assert_eq!(days_in_month(2013, 13), 0);
    }

    #[test]
    fn new_rejects_invalid_dates() {
        assert!(CivilDate::new(2013, 2, 29).is_err());
        assert!(CivilDate::new(2012, 2, 29).is_ok());
        assert!(CivilDate::new(2012, 0, 1).is_err());
        assert!(CivilDate::new(2012, 4, 31).is_err());
        assert!(CivilDate::new(2012, 4, 0).is_err());
    }

    #[test]
    fn weekday_known_dates() {
        // The paper's Foursquare TSV starts "Tue Apr 03 ... 2012".
        assert_eq!(CivilDate::new(2012, 4, 3).unwrap().weekday(), Weekday::Tue);
        assert_eq!(CivilDate::new(2013, 2, 16).unwrap().weekday(), Weekday::Sat);
        assert!(CivilDate::new(2013, 2, 16).unwrap().weekday().is_weekend());
    }

    #[test]
    fn succ_and_pred_cross_month_and_year() {
        let d = CivilDate::new(2012, 12, 31).unwrap();
        assert_eq!(d.succ(), CivilDate::new(2013, 1, 1).unwrap());
        assert_eq!(d.succ().pred(), d);
        let feb = CivilDate::new(2012, 2, 28).unwrap();
        assert_eq!(feb.succ(), CivilDate::new(2012, 2, 29).unwrap());
    }

    #[test]
    fn days_until_is_signed() {
        let a = CivilDate::new(2012, 4, 1).unwrap();
        let b = CivilDate::new(2012, 6, 30).unwrap();
        assert_eq!(a.days_until(b), 90);
        assert_eq!(b.days_until(a), -90);
    }

    #[test]
    fn timestamp_round_trip_civil() {
        let t = Timestamp::from_civil(2012, 4, 3, 18, 0, 9).unwrap();
        let c = t.to_civil_utc();
        assert_eq!(c.date, CivilDate::new(2012, 4, 3).unwrap());
        assert_eq!((c.hour, c.minute, c.second), (18, 0, 9));
        // Known Unix timestamp for 2012-04-03T18:00:09Z.
        assert_eq!(t.unix_seconds(), 1_333_476_009);
    }

    #[test]
    fn timestamp_rejects_bad_time() {
        assert!(matches!(
            Timestamp::from_civil(2012, 4, 3, 24, 0, 0),
            Err(DatasetError::InvalidTimeOfDay { .. })
        ));
        assert!(Timestamp::from_civil(2012, 4, 3, 23, 59, 59).is_ok());
    }

    #[test]
    fn local_conversion_crosses_midnight() {
        // 2012-04-04 01:30 UTC is 2012-04-03 21:30 in New York (UTC-4).
        let t = Timestamp::from_civil(2012, 4, 4, 1, 30, 0).unwrap();
        let local = t.to_civil_local(-240);
        assert_eq!(local.date, CivilDate::new(2012, 4, 3).unwrap());
        assert_eq!(local.hour, 21);
        // And +9h (Tokyo-like) pushes it to 10:30 the same day.
        let tokyo = t.to_civil_local(540);
        assert_eq!(tokyo.date, CivilDate::new(2012, 4, 4).unwrap());
        assert_eq!(tokyo.hour, 10);
    }

    #[test]
    fn negative_timestamps_work() {
        let t = Timestamp::from_unix_seconds(-1);
        let c = t.to_civil_utc();
        assert_eq!(c.date, CivilDate::new(1969, 12, 31).unwrap());
        assert_eq!((c.hour, c.minute, c.second), (23, 59, 59));
    }

    #[test]
    fn seconds_of_day_and_display() {
        let t = Timestamp::from_civil(2012, 4, 3, 1, 2, 3).unwrap();
        assert_eq!(t.to_civil_utc().seconds_of_day(), 3723);
        assert_eq!(t.to_string(), "2012-04-03 01:02:03 UTC");
    }

    proptest! {
        #[test]
        fn prop_epoch_days_round_trip(days in -1_000_000i64..1_000_000) {
            let d = CivilDate::from_epoch_days(days);
            prop_assert_eq!(d.to_epoch_days(), days);
            prop_assert!(CivilDate::new(d.year(), d.month(), d.day()).is_ok());
        }

        #[test]
        fn prop_succ_advances_one_day(days in -100_000i64..100_000) {
            let d = CivilDate::from_epoch_days(days);
            prop_assert_eq!(d.days_until(d.succ()), 1);
        }

        #[test]
        fn prop_timestamp_civil_round_trip(secs in -5_000_000_000i64..5_000_000_000) {
            let t = Timestamp::from_unix_seconds(secs);
            let c = t.to_civil_utc();
            let back = Timestamp::from_civil(
                c.date.year(), c.date.month(), c.date.day(), c.hour, c.minute, c.second,
            ).unwrap();
            prop_assert_eq!(back, t);
        }

        #[test]
        fn prop_local_offset_shifts_linearly(
            secs in 0i64..2_000_000_000, offset in -840i32..=840,
        ) {
            let t = Timestamp::from_unix_seconds(secs);
            let local = t.to_civil_local(offset);
            let shifted = Timestamp::from_unix_seconds(secs + i64::from(offset) * 60);
            prop_assert_eq!(local, shifted.to_civil_utc());
        }
    }
}
