//! Temporal activity profiles.
//!
//! A weekday × hour matrix of check-in counts — the "when is this city
//! (or user) active" view that backs the platform's timeline heatmap
//! and validates the synthetic generator against real-data rhythms
//! (weekday commute peaks, weekend brunch bulge, nightlife evenings).

use crate::{Dataset, UserId, Weekday};
use serde::{Deserialize, Serialize};

/// A 7 × 24 matrix of check-in counts (rows Monday-first, columns hour
/// of local day).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityProfile {
    counts: Vec<u64>, // 7 * 24 row-major
}

impl Default for ActivityProfile {
    fn default() -> Self {
        ActivityProfile {
            counts: vec![0; 7 * 24],
        }
    }
}

impl ActivityProfile {
    /// An empty profile.
    pub fn new() -> ActivityProfile {
        ActivityProfile::default()
    }

    /// The profile of the whole dataset (local check-in times).
    pub fn of_dataset(dataset: &Dataset) -> ActivityProfile {
        let mut profile = ActivityProfile::new();
        for c in dataset.checkins() {
            let local = c.local_time();
            profile.record(local.date.weekday(), local.hour);
        }
        profile
    }

    /// The profile of one user (empty for an unknown user).
    pub fn of_user(dataset: &Dataset, user: UserId) -> ActivityProfile {
        let mut profile = ActivityProfile::new();
        for c in dataset.checkins_of(user) {
            let local = c.local_time();
            profile.record(local.date.weekday(), local.hour);
        }
        profile
    }

    /// Records one check-in at `(weekday, hour)`.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn record(&mut self, weekday: Weekday, hour: u8) {
        assert!(hour < 24, "hour {hour} out of range");
        self.counts[Self::index(weekday, hour)] += 1;
    }

    fn index(weekday: Weekday, hour: u8) -> usize {
        let day = Weekday::ALL
            .iter()
            .position(|w| *w == weekday)
            .expect("all weekdays are in ALL");
        day * 24 + usize::from(hour)
    }

    /// Count at `(weekday, hour)`.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn count(&self, weekday: Weekday, hour: u8) -> u64 {
        assert!(hour < 24, "hour {hour} out of range");
        self.counts[Self::index(weekday, hour)]
    }

    /// Total check-ins in the profile.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Counts summed per hour across all weekdays (`[u64; 24]`).
    pub fn hourly_totals(&self) -> [u64; 24] {
        let mut out = [0u64; 24];
        for day in 0..7 {
            for (hour, slot) in out.iter_mut().enumerate() {
                *slot += self.counts[day * 24 + hour];
            }
        }
        out
    }

    /// Counts summed per weekday across all hours, Monday-first
    /// (`[u64; 7]`).
    pub fn daily_totals(&self) -> [u64; 7] {
        let mut out = [0u64; 7];
        for (day, slot) in out.iter_mut().enumerate() {
            *slot = self.counts[day * 24..(day + 1) * 24].iter().sum();
        }
        out
    }

    /// The `(weekday, hour)` with the highest count, or `None` for an
    /// empty profile.
    pub fn peak(&self) -> Option<(Weekday, u8, u64)> {
        let (idx, &max) = self
            .counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
        if max == 0 {
            return None;
        }
        Some((Weekday::ALL[idx / 24], (idx % 24) as u8, max))
    }

    /// Weekend share of all check-ins (0 for an empty profile).
    pub fn weekend_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let daily = self.daily_totals();
        (daily[5] + daily[6]) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CategoryId, CheckIn, Timestamp, Venue, VenueId};
    use crowdweb_geo::LatLon;

    fn dataset_at_hours(hours: &[(u8, u8, u8)]) -> Dataset {
        // (month, day, hour) for user 1, April 2012, UTC.
        let mut b = Dataset::builder();
        b.add_venue(Venue::new(
            VenueId::new(0),
            "v",
            LatLon::new(40.7, -74.0).unwrap(),
            CategoryId::new(0),
        ));
        for &(month, day, hour) in hours {
            b.add_checkin(CheckIn::new(
                UserId::new(1),
                VenueId::new(0),
                Timestamp::from_civil(2012, month, day, hour, 0, 0).unwrap(),
                0,
            ));
        }
        b.build().unwrap()
    }

    #[test]
    fn records_land_in_correct_cells() {
        // 2012-04-03 was a Tuesday.
        let d = dataset_at_hours(&[(4, 3, 9), (4, 3, 9), (4, 7, 14)]); // Sat 4/7
        let p = ActivityProfile::of_dataset(&d);
        assert_eq!(p.count(Weekday::Tue, 9), 2);
        assert_eq!(p.count(Weekday::Sat, 14), 1);
        assert_eq!(p.count(Weekday::Mon, 9), 0);
        assert_eq!(p.total(), 3);
    }

    #[test]
    fn hourly_and_daily_totals() {
        let d = dataset_at_hours(&[(4, 3, 9), (4, 4, 9), (4, 7, 14)]);
        let p = ActivityProfile::of_dataset(&d);
        assert_eq!(p.hourly_totals()[9], 2);
        assert_eq!(p.hourly_totals()[14], 1);
        let daily = p.daily_totals();
        assert_eq!(daily[1], 1); // Tue
        assert_eq!(daily[2], 1); // Wed
        assert_eq!(daily[5], 1); // Sat
    }

    #[test]
    fn peak_and_weekend_fraction() {
        let d = dataset_at_hours(&[(4, 3, 9), (4, 3, 9), (4, 7, 14)]);
        let p = ActivityProfile::of_dataset(&d);
        assert_eq!(p.peak(), Some((Weekday::Tue, 9, 2)));
        assert!((p.weekend_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(ActivityProfile::new().peak(), None);
        assert_eq!(ActivityProfile::new().weekend_fraction(), 0.0);
    }

    #[test]
    fn per_user_profile_filters() {
        let d = dataset_at_hours(&[(4, 3, 9)]);
        let p = ActivityProfile::of_user(&d, UserId::new(1));
        assert_eq!(p.total(), 1);
        let empty = ActivityProfile::of_user(&d, UserId::new(42));
        assert_eq!(empty.total(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_rejects_hour_24() {
        ActivityProfile::new().record(Weekday::Mon, 24);
    }
}
