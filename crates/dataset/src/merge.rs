//! Appending check-in batches to an immutable [`Dataset`].
//!
//! Live ingestion delivers check-ins as [`MergeRecord`]s: the same
//! information a TSV row carries, with venues identified by their
//! opaque string key. [`Dataset::merge_records`] resolves those keys
//! against the existing venue set (first occurrence wins, exactly like
//! the TSV reader), assigns dense ids to brand-new venues, and builds a
//! fresh immutable dataset.
//!
//! Determinism contract: merging a batch is equivalent to appending the
//! records' rows to the original TSV and re-reading it — new venues get
//! ids in record order starting after the current maximum, and the
//! resulting dataset is byte-identical whether the records arrive in
//! one batch or split across several (in the same overall order).

use crate::category::CategoryKind;
use crate::{CheckIn, Dataset, DatasetError, Timestamp, UserId, Venue, VenueId};
use crowdweb_geo::LatLon;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One ingested check-in, with its venue identified by string key (the
/// TSV `venue_id` column). Category and location are only consulted
/// when the key introduces a venue the dataset has not seen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeRecord {
    /// The user checking in.
    pub user: UserId,
    /// Opaque venue key (the venue "name" in TSV terms).
    pub venue_key: String,
    /// Category name for a new venue (interned into the taxonomy).
    pub category: String,
    /// Location for a new venue.
    pub location: LatLon,
    /// The user's UTC offset at check-in time, in minutes.
    pub tz_offset_minutes: i32,
    /// Check-in instant (UTC).
    pub time: Timestamp,
}

impl Dataset {
    /// Builds a new dataset containing every existing venue and
    /// check-in plus the given records, resolving venue keys by name.
    ///
    /// Existing venues keep their id, location, and category (first
    /// occurrence wins); new venues are assigned ids in record order,
    /// starting after the current maximum raw id, and their categories
    /// are interned into the taxonomy with a guessed coarse kind.
    ///
    /// # Errors
    ///
    /// Propagates [`DatasetBuilder::build`](crate::DatasetBuilder::build)
    /// validation errors (impossible for well-formed inputs, since every
    /// referenced venue is added here).
    pub fn merge_records(&self, records: &[MergeRecord]) -> Result<Dataset, DatasetError> {
        let mut builder = Dataset::builder();
        builder.taxonomy(self.taxonomy().clone());
        let mut key_to_id: HashMap<&str, VenueId> = HashMap::with_capacity(self.venue_count());
        let mut next_raw = 0u32;
        for v in self.venues() {
            builder.add_venue(v.clone());
            key_to_id.insert(v.name(), v.id());
            next_raw = next_raw.max(v.id().raw().saturating_add(1));
        }
        for c in self.checkins() {
            builder.add_checkin(*c);
        }
        // Venues introduced by this batch, keyed by name. Kept separate
        // from `key_to_id` so the borrow of `self` stays immutable.
        let mut new_ids: HashMap<&str, VenueId> = HashMap::new();
        for r in records {
            let vid = match key_to_id
                .get(r.venue_key.as_str())
                .or_else(|| new_ids.get(r.venue_key.as_str()))
            {
                Some(&id) => id,
                None => {
                    let id = VenueId::new(next_raw);
                    next_raw = next_raw.saturating_add(1);
                    let kind = CategoryKind::guess(&r.category);
                    let cat = builder.taxonomy_mut().register(&r.category, kind);
                    builder.add_venue(Venue::new(id, &r.venue_key, r.location, cat));
                    new_ids.insert(r.venue_key.as_str(), id);
                    id
                }
            };
            builder.add_checkin(CheckIn::new(r.user, vid, r.time, r.tz_offset_minutes));
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CategoryId;

    fn base() -> Dataset {
        let mut b = Dataset::builder();
        b.add_venue(Venue::new(
            VenueId::new(0),
            "v-home",
            LatLon::new(40.75, -73.99).unwrap(),
            CategoryId::new(0),
        ));
        b.add_venue(Venue::new(
            VenueId::new(1),
            "v-work",
            LatLon::new(40.76, -73.98).unwrap(),
            CategoryId::new(1),
        ));
        for (user, venue, secs) in [(1u32, 0u32, 100i64), (1, 1, 200), (2, 0, 150)] {
            b.add_checkin(CheckIn::new(
                UserId::new(user),
                VenueId::new(venue),
                Timestamp::from_unix_seconds(secs),
                -240,
            ));
        }
        b.build().unwrap()
    }

    fn record(user: u32, key: &str, secs: i64) -> MergeRecord {
        MergeRecord {
            user: UserId::new(user),
            venue_key: key.to_owned(),
            category: "Coffee Shop".to_owned(),
            location: LatLon::new(40.77, -73.97).unwrap(),
            tz_offset_minutes: -240,
            time: Timestamp::from_unix_seconds(secs),
        }
    }

    #[test]
    fn merge_resolves_existing_venue_by_key() {
        let d = base();
        let merged = d.merge_records(&[record(2, "v-work", 500)]).unwrap();
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.venue_count(), 2, "no new venue for a known key");
        let last = merged.checkins_of(UserId::new(2)).last().unwrap();
        assert_eq!(last.venue(), VenueId::new(1));
    }

    #[test]
    fn merge_assigns_dense_ids_to_new_venues_in_record_order() {
        let d = base();
        let merged = d
            .merge_records(&[
                record(3, "v-cafe", 300),
                record(3, "v-gym", 400),
                record(4, "v-cafe", 500),
            ])
            .unwrap();
        assert_eq!(merged.venue_count(), 4);
        assert_eq!(merged.venue(VenueId::new(2)).unwrap().name(), "v-cafe");
        assert_eq!(merged.venue(VenueId::new(3)).unwrap().name(), "v-gym");
        // The new category was interned.
        assert!(merged.taxonomy().id_of("Coffee Shop").is_some());
    }

    #[test]
    fn merge_in_stages_equals_merge_at_once() {
        let d = base();
        let batch = vec![
            record(1, "v-cafe", 300),
            record(2, "v-work", 400),
            record(5, "v-gym", 500),
        ];
        let once = d.merge_records(&batch).unwrap();
        let staged = d
            .merge_records(&batch[..1])
            .unwrap()
            .merge_records(&batch[1..])
            .unwrap();
        assert_eq!(once.checkins(), staged.checkins());
        assert_eq!(once.venues(), staged.venues());
    }

    #[test]
    fn empty_merge_is_identity() {
        let d = base();
        let merged = d.merge_records(&[]).unwrap();
        assert_eq!(merged.checkins(), d.checkins());
        assert_eq!(merged.venues(), d.venues());
    }

    #[test]
    fn merge_keeps_checkins_sorted_per_user() {
        let d = base();
        // Insert a check-in earlier than user 1's existing ones.
        let merged = d.merge_records(&[record(1, "v-home", 50)]).unwrap();
        let times: Vec<i64> = merged
            .checkins_of(UserId::new(1))
            .iter()
            .map(|c| c.time().unix_seconds())
            .collect();
        assert_eq!(times, vec![50, 100, 200]);
    }
}
