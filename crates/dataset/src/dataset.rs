//! The indexed dataset container.

use crate::{CheckIn, DatasetError, Taxonomy, Timestamp, UserId, Venue, VenueId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::ops::Range;

/// Incremental constructor for a [`Dataset`] (C-BUILDER).
///
/// Venues and check-ins can be added in any order; [`DatasetBuilder::build`]
/// validates referential integrity, sorts, and indexes.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    taxonomy: Taxonomy,
    venues: Vec<Venue>,
    checkins: Vec<CheckIn>,
}

impl DatasetBuilder {
    /// Creates a builder with the built-in Foursquare taxonomy.
    pub fn new() -> DatasetBuilder {
        DatasetBuilder {
            taxonomy: Taxonomy::foursquare(),
            venues: Vec::new(),
            checkins: Vec::new(),
        }
    }

    /// Replaces the taxonomy (builder-style).
    pub fn taxonomy(&mut self, taxonomy: Taxonomy) -> &mut DatasetBuilder {
        self.taxonomy = taxonomy;
        self
    }

    /// Mutable access to the taxonomy, e.g. to register categories while
    /// loading.
    pub fn taxonomy_mut(&mut self) -> &mut Taxonomy {
        &mut self.taxonomy
    }

    /// Adds a venue.
    pub fn add_venue(&mut self, venue: Venue) -> &mut DatasetBuilder {
        self.venues.push(venue);
        self
    }

    /// Adds a check-in record.
    pub fn add_checkin(&mut self, checkin: CheckIn) -> &mut DatasetBuilder {
        self.checkins.push(checkin);
        self
    }

    /// Number of check-ins added so far.
    pub fn checkin_count(&self) -> usize {
        self.checkins.len()
    }

    /// Validates, sorts, indexes, and produces the immutable [`Dataset`].
    ///
    /// # Errors
    ///
    /// - [`DatasetError::DuplicateVenue`] if two venues share an id.
    /// - [`DatasetError::UnknownVenue`] if a check-in references a venue
    ///   that was never added.
    pub fn build(self) -> Result<Dataset, DatasetError> {
        let mut venue_index: HashMap<VenueId, usize> = HashMap::with_capacity(self.venues.len());
        for (i, v) in self.venues.iter().enumerate() {
            if venue_index.insert(v.id(), i).is_some() {
                return Err(DatasetError::DuplicateVenue(v.id()));
            }
        }
        for c in &self.checkins {
            if !venue_index.contains_key(&c.venue()) {
                return Err(DatasetError::UnknownVenue {
                    venue: c.venue(),
                    user: c.user(),
                });
            }
        }
        let mut checkins = self.checkins;
        checkins.sort_by_key(|c| (c.user(), c.time()));

        // Contiguous per-user ranges over the sorted check-in vector.
        let mut user_ranges: Vec<(UserId, Range<usize>)> = Vec::new();
        let mut start = 0usize;
        for i in 1..=checkins.len() {
            if i == checkins.len() || checkins[i].user() != checkins[start].user() {
                user_ranges.push((checkins[start].user(), start..i));
                start = i;
            }
        }

        Ok(Dataset {
            taxonomy: self.taxonomy,
            venues: self.venues,
            venue_index,
            checkins,
            user_ranges,
        })
    }
}

/// An immutable, indexed GTSM dataset: taxonomy, venues, and check-ins
/// sorted by `(user, time)` with per-user ranges.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    taxonomy: Taxonomy,
    venues: Vec<Venue>,
    #[serde(skip)]
    venue_index: HashMap<VenueId, usize>,
    checkins: Vec<CheckIn>,
    #[serde(skip)]
    user_ranges: Vec<(UserId, Range<usize>)>,
}

impl Dataset {
    /// Starts building a dataset.
    pub fn builder() -> DatasetBuilder {
        DatasetBuilder::new()
    }

    /// The venue category taxonomy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Total number of check-ins.
    pub fn len(&self) -> usize {
        self.checkins.len()
    }

    /// Whether the dataset holds no check-ins.
    pub fn is_empty(&self) -> bool {
        self.checkins.is_empty()
    }

    /// Number of distinct users.
    pub fn user_count(&self) -> usize {
        self.user_ranges.len()
    }

    /// Number of venues.
    pub fn venue_count(&self) -> usize {
        self.venues.len()
    }

    /// All check-ins, sorted by `(user, time)`.
    pub fn checkins(&self) -> &[CheckIn] {
        &self.checkins
    }

    /// All venues, in insertion order.
    pub fn venues(&self) -> &[Venue] {
        &self.venues
    }

    /// The venue with the given id, if present.
    pub fn venue(&self, id: VenueId) -> Option<&Venue> {
        self.venue_index.get(&id).map(|&i| &self.venues[i])
    }

    /// Iterator over distinct user ids in ascending order.
    pub fn user_ids(&self) -> impl Iterator<Item = UserId> + '_ {
        self.user_ranges.iter().map(|(u, _)| *u)
    }

    /// The check-ins of one user, sorted by time (empty slice for an
    /// unknown user).
    pub fn checkins_of(&self, user: UserId) -> &[CheckIn] {
        match self.user_ranges.binary_search_by_key(&user, |(u, _)| *u) {
            Ok(i) => &self.checkins[self.user_ranges[i].1.clone()],
            Err(_) => &[],
        }
    }

    /// Earliest and latest check-in instants, or `None` if empty.
    pub fn time_range(&self) -> Option<(Timestamp, Timestamp)> {
        let min = self.checkins.iter().map(CheckIn::time).min()?;
        let max = self.checkins.iter().map(CheckIn::time).max()?;
        Some((min, max))
    }

    /// Rebuilds the skipped indices after `serde` deserialization.
    ///
    /// `Dataset` serializes only its data (venues, check-ins, taxonomy);
    /// call this on the deserialized value before using lookups.
    pub fn rebuild_index(&mut self) {
        self.taxonomy.rebuild_index();
        self.venue_index = self
            .venues
            .iter()
            .enumerate()
            .map(|(i, v)| (v.id(), i))
            .collect();
        self.checkins.sort_by_key(|c| (c.user(), c.time()));
        self.user_ranges.clear();
        let mut start = 0usize;
        for i in 1..=self.checkins.len() {
            if i == self.checkins.len() || self.checkins[i].user() != self.checkins[start].user() {
                self.user_ranges
                    .push((self.checkins[start].user(), start..i));
                start = i;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CategoryId;
    use crowdweb_geo::LatLon;

    fn venue(id: u32) -> Venue {
        Venue::new(
            VenueId::new(id),
            &format!("venue {id}"),
            LatLon::new(40.7 + f64::from(id) * 0.001, -74.0).unwrap(),
            CategoryId::new(0),
        )
    }

    fn checkin(user: u32, venue_id: u32, secs: i64) -> CheckIn {
        CheckIn::new(
            UserId::new(user),
            VenueId::new(venue_id),
            Timestamp::from_unix_seconds(secs),
            -240,
        )
    }

    fn sample() -> Dataset {
        let mut b = Dataset::builder();
        b.add_venue(venue(1)).add_venue(venue(2));
        // Deliberately out of order to exercise sorting.
        b.add_checkin(checkin(2, 1, 300));
        b.add_checkin(checkin(1, 2, 200));
        b.add_checkin(checkin(1, 1, 100));
        b.add_checkin(checkin(2, 2, 50));
        b.build().unwrap()
    }

    #[test]
    fn build_sorts_by_user_then_time() {
        let d = sample();
        let order: Vec<(u32, i64)> = d
            .checkins()
            .iter()
            .map(|c| (c.user().raw(), c.time().unix_seconds()))
            .collect();
        assert_eq!(order, vec![(1, 100), (1, 200), (2, 50), (2, 300)]);
    }

    #[test]
    fn per_user_slices() {
        let d = sample();
        assert_eq!(d.checkins_of(UserId::new(1)).len(), 2);
        assert_eq!(d.checkins_of(UserId::new(2)).len(), 2);
        assert!(d.checkins_of(UserId::new(99)).is_empty());
    }

    #[test]
    fn user_ids_ascending() {
        let d = sample();
        let ids: Vec<u32> = d.user_ids().map(UserId::raw).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(d.user_count(), 2);
    }

    #[test]
    fn venue_lookup() {
        let d = sample();
        assert_eq!(d.venue(VenueId::new(1)).unwrap().name(), "venue 1");
        assert!(d.venue(VenueId::new(3)).is_none());
        assert_eq!(d.venue_count(), 2);
    }

    #[test]
    fn build_rejects_dangling_venue() {
        let mut b = Dataset::builder();
        b.add_checkin(checkin(1, 42, 0));
        assert!(matches!(b.build(), Err(DatasetError::UnknownVenue { .. })));
    }

    #[test]
    fn build_rejects_duplicate_venue() {
        let mut b = Dataset::builder();
        b.add_venue(venue(1)).add_venue(venue(1));
        assert!(matches!(b.build(), Err(DatasetError::DuplicateVenue(_))));
    }

    #[test]
    fn time_range_spans_min_max() {
        let d = sample();
        let (lo, hi) = d.time_range().unwrap();
        assert_eq!(lo.unix_seconds(), 50);
        assert_eq!(hi.unix_seconds(), 300);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::builder().build().unwrap();
        assert!(d.is_empty());
        assert_eq!(d.time_range(), None);
        assert_eq!(d.user_count(), 0);
    }

    #[test]
    fn rebuild_index_restores_lookups() {
        let d = sample();
        let mut copy = Dataset {
            taxonomy: d.taxonomy.clone(),
            venues: d.venues.clone(),
            venue_index: HashMap::new(),
            checkins: d.checkins.clone(),
            user_ranges: Vec::new(),
        };
        assert!(copy.venue(VenueId::new(1)).is_none());
        copy.rebuild_index();
        assert!(copy.venue(VenueId::new(1)).is_some());
        assert_eq!(copy.checkins_of(UserId::new(1)).len(), 2);
    }
}
