//! GTSM (geotagged social media) check-in data model for CrowdWeb.
//!
//! The paper's default dataset is the public Foursquare New York City
//! check-in collection (227,428 check-ins by 1,083 users, April 2012 –
//! February 2013). This crate models that data from scratch:
//!
//! - [`ids`] — newtype identifiers for users, venues, and categories.
//! - [`time`] — UTC timestamps and civil-date math (no external time
//!   crate).
//! - [`category`] — a Foursquare-like two-level venue category taxonomy;
//!   the *place labels* that CrowdWeb abstracts venues into.
//! - [`venue`] / [`checkin`] — venues and check-in records.
//! - [`dataset`] — the indexed [`Dataset`] container.
//! - [`merge`] — appending ingested [`MergeRecord`] batches to an
//!   existing dataset with TSV-equivalent venue resolution.
//! - [`tsv`] — reader/writer for the `dataset_TSMC2014_NYC.txt` TSV
//!   format, so the real Foursquare file drops in unchanged.
//! - [`stats`] — the dataset statistics reported in Section I.1 of the
//!   paper (per-user record counts, sparsity, monthly richness).
//!
//! # Examples
//!
//! ```
//! use crowdweb_dataset::{CheckIn, Dataset, Taxonomy, Timestamp, UserId, Venue, VenueId};
//! use crowdweb_geo::LatLon;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let taxonomy = Taxonomy::foursquare();
//! let eatery = taxonomy.require("Thai Restaurant")?;
//! let mut builder = Dataset::builder();
//! builder.add_venue(Venue::new(
//!     VenueId::new(1),
//!     "Thai Express",
//!     LatLon::new(40.75, -73.99)?,
//!     eatery,
//! ));
//! builder.add_checkin(CheckIn::new(
//!     UserId::new(7),
//!     VenueId::new(1),
//!     Timestamp::from_civil(2012, 4, 3, 12, 30, 0)?,
//!     -240,
//! ));
//! let dataset = builder.build()?;
//! assert_eq!(dataset.len(), 1);
//! assert_eq!(dataset.user_ids().count(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod checkin;
pub mod dataset;
pub mod error;
pub mod ids;
pub mod merge;
pub mod profile;
pub mod stats;
pub mod time;
pub mod tsv;
pub mod venue;

pub use category::{Category, CategoryKind, Taxonomy};
pub use checkin::CheckIn;
pub use dataset::{Dataset, DatasetBuilder};
pub use error::DatasetError;
pub use ids::{CategoryId, UserId, VenueId};
pub use merge::MergeRecord;
pub use profile::ActivityProfile;
pub use stats::{DatasetStats, MonthKey};
pub use time::{CivilDate, CivilDateTime, Timestamp, Weekday};
pub use venue::Venue;
