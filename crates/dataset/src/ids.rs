//! Newtype identifiers.
//!
//! Users, venues, and categories are all addressed by dense integer ids.
//! Newtypes keep them statically distinct (C-NEWTYPE): a `UserId` can
//! never be passed where a `VenueId` is expected.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
            Default,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates the identifier from its raw integer value.
            pub fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// The raw integer value.
            pub fn raw(self) -> u32 {
                self.0
            }

            /// The raw value as a `usize`, for indexing.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifier of a platform user.
    UserId,
    "u"
);
id_type!(
    /// Identifier of a venue (a check-in location).
    VenueId,
    "v"
);
id_type!(
    /// Identifier of a venue category in a [`crate::Taxonomy`].
    CategoryId,
    "c"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_prefix() {
        assert_eq!(UserId::new(3).to_string(), "u3");
        assert_eq!(VenueId::new(4).to_string(), "v4");
        assert_eq!(CategoryId::new(5).to_string(), "c5");
    }

    #[test]
    fn round_trip_through_u32() {
        let id = UserId::from(42u32);
        assert_eq!(u32::from(id), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42usize);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(VenueId::new(1) < VenueId::new(2));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(CategoryId::default(), CategoryId::new(0));
    }
}
