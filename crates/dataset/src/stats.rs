//! Dataset statistics — the numbers Section I.1 of the paper reports for
//! the Foursquare NYC data: total check-ins, user count, mean/median
//! records per user, sparsity, and the richest three-month window.

use crate::{CheckIn, Dataset};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A calendar month (`year`, `month`) used as an aggregation key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MonthKey {
    /// Year.
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
}

impl MonthKey {
    /// The month containing a check-in's *local* date.
    pub fn of(checkin: &CheckIn) -> MonthKey {
        let d = checkin.local_date();
        MonthKey {
            year: d.year(),
            month: d.month(),
        }
    }

    /// The next calendar month.
    pub fn succ(self) -> MonthKey {
        if self.month == 12 {
            MonthKey {
                year: self.year + 1,
                month: 1,
            }
        } else {
            MonthKey {
                year: self.year,
                month: self.month + 1,
            }
        }
    }

    /// English month name abbreviation.
    pub fn abbrev(self) -> &'static str {
        const NAMES: [&str; 12] = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        NAMES[usize::from(self.month.clamp(1, 12)) - 1]
    }
}

impl fmt::Display for MonthKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.abbrev(), self.year)
    }
}

/// Aggregate statistics over a [`Dataset`].
///
/// # Examples
///
/// ```
/// use crowdweb_dataset::{DatasetStats, Dataset};
///
/// let stats = DatasetStats::compute(&Dataset::builder().build().unwrap());
/// assert_eq!(stats.total_checkins, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Total number of check-in records.
    pub total_checkins: usize,
    /// Number of distinct users.
    pub user_count: usize,
    /// Number of distinct venues.
    pub venue_count: usize,
    /// Mean records per user (0 for an empty dataset).
    pub mean_records_per_user: f64,
    /// Median records per user (0 for an empty dataset).
    pub median_records_per_user: f64,
    /// Number of calendar days spanned (local dates, inclusive).
    pub collection_days: i64,
    /// Mean records per user per day — the paper's sparsity measure
    /// ("less than one record per day").
    pub records_per_user_per_day: f64,
    /// Check-in counts per local calendar month.
    pub monthly_counts: BTreeMap<MonthKey, usize>,
}

impl DatasetStats {
    /// Computes statistics over a dataset.
    pub fn compute(dataset: &Dataset) -> DatasetStats {
        let total = dataset.len();
        let users = dataset.user_count();
        let mut per_user: Vec<usize> = dataset
            .user_ids()
            .map(|u| dataset.checkins_of(u).len())
            .collect();
        per_user.sort_unstable();
        let mean = if users == 0 {
            0.0
        } else {
            total as f64 / users as f64
        };
        let median = if per_user.is_empty() {
            0.0
        } else if per_user.len() % 2 == 1 {
            per_user[per_user.len() / 2] as f64
        } else {
            (per_user[per_user.len() / 2 - 1] + per_user[per_user.len() / 2]) as f64 / 2.0
        };

        let mut monthly: BTreeMap<MonthKey, usize> = BTreeMap::new();
        let mut min_day = i64::MAX;
        let mut max_day = i64::MIN;
        for c in dataset.checkins() {
            *monthly.entry(MonthKey::of(c)).or_insert(0) += 1;
            let day = c.local_date().to_epoch_days();
            min_day = min_day.min(day);
            max_day = max_day.max(day);
        }
        let days = if total == 0 { 0 } else { max_day - min_day + 1 };
        let per_user_per_day = if users == 0 || days == 0 {
            0.0
        } else {
            mean / days as f64
        };

        DatasetStats {
            total_checkins: total,
            user_count: users,
            venue_count: dataset.venue_count(),
            mean_records_per_user: mean,
            median_records_per_user: median,
            collection_days: days,
            records_per_user_per_day: per_user_per_day,
            monthly_counts: monthly,
        }
    }

    /// Whether the dataset is sparse in the paper's sense: less than one
    /// record per user per day.
    pub fn is_sparse(&self) -> bool {
        self.records_per_user_per_day < 1.0
    }

    /// The consecutive `window_months`-month window with the most
    /// check-ins, returned as `(first_month, total_checkins_in_window)`.
    /// `None` if the dataset is empty or `window_months == 0`.
    ///
    /// The paper uses this to pick April–June as the richest three-month
    /// period.
    pub fn richest_window(&self, window_months: usize) -> Option<(MonthKey, usize)> {
        if window_months == 0 || self.monthly_counts.is_empty() {
            return None;
        }
        // Materialize the full consecutive month range (months with zero
        // check-ins count as zero).
        let first = *self.monthly_counts.keys().next()?;
        let last = *self.monthly_counts.keys().next_back()?;
        let mut months = Vec::new();
        let mut m = first;
        loop {
            months.push((m, self.monthly_counts.get(&m).copied().unwrap_or(0)));
            if m == last {
                break;
            }
            m = m.succ();
        }
        if months.len() < window_months {
            let total = months.iter().map(|(_, c)| c).sum();
            return Some((first, total));
        }
        months
            .windows(window_months)
            .map(|w| (w[0].0, w.iter().map(|(_, c)| c).sum::<usize>()))
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CategoryId, Timestamp, UserId, Venue, VenueId};
    use crowdweb_geo::LatLon;

    fn dataset_with(checkin_times: &[(u32, i64)]) -> Dataset {
        let mut b = Dataset::builder();
        b.add_venue(Venue::new(
            VenueId::new(0),
            "v",
            LatLon::new(40.7, -74.0).unwrap(),
            CategoryId::new(0),
        ));
        for &(user, secs) in checkin_times {
            b.add_checkin(CheckIn::new(
                UserId::new(user),
                VenueId::new(0),
                Timestamp::from_unix_seconds(secs),
                0,
            ));
        }
        b.build().unwrap()
    }

    fn secs(y: i32, m: u8, d: u8) -> i64 {
        Timestamp::from_civil(y, m, d, 12, 0, 0)
            .unwrap()
            .unix_seconds()
    }

    #[test]
    fn empty_dataset_stats_are_zero() {
        let s = DatasetStats::compute(&Dataset::builder().build().unwrap());
        assert_eq!(s.total_checkins, 0);
        assert_eq!(s.mean_records_per_user, 0.0);
        assert_eq!(s.median_records_per_user, 0.0);
        assert_eq!(s.collection_days, 0);
        assert_eq!(s.richest_window(3), None);
    }

    #[test]
    fn mean_and_median_per_user() {
        // User 1: 3 records, user 2: 1 record.
        let d = dataset_with(&[
            (1, secs(2012, 4, 1)),
            (1, secs(2012, 4, 2)),
            (1, secs(2012, 4, 3)),
            (2, secs(2012, 4, 1)),
        ]);
        let s = DatasetStats::compute(&d);
        assert_eq!(s.total_checkins, 4);
        assert_eq!(s.user_count, 2);
        assert_eq!(s.mean_records_per_user, 2.0);
        assert_eq!(s.median_records_per_user, 2.0); // (1+3)/2
    }

    #[test]
    fn median_odd_count() {
        let d = dataset_with(&[
            (1, secs(2012, 4, 1)),
            (2, secs(2012, 4, 1)),
            (2, secs(2012, 4, 2)),
            (3, secs(2012, 4, 1)),
            (3, secs(2012, 4, 2)),
            (3, secs(2012, 4, 3)),
        ]);
        let s = DatasetStats::compute(&d);
        assert_eq!(s.median_records_per_user, 2.0);
    }

    #[test]
    fn collection_days_inclusive() {
        let d = dataset_with(&[(1, secs(2012, 4, 1)), (1, secs(2012, 4, 10))]);
        let s = DatasetStats::compute(&d);
        assert_eq!(s.collection_days, 10);
    }

    #[test]
    fn sparsity_flag() {
        // 2 records over 10 days: 0.2/day — sparse.
        let d = dataset_with(&[(1, secs(2012, 4, 1)), (1, secs(2012, 4, 10))]);
        assert!(DatasetStats::compute(&d).is_sparse());
        // 3 records in one day — dense.
        let dense = dataset_with(&[
            (1, secs(2012, 4, 1)),
            (1, secs(2012, 4, 1) + 60),
            (1, secs(2012, 4, 1) + 120),
        ]);
        assert!(!DatasetStats::compute(&dense).is_sparse());
    }

    #[test]
    fn monthly_counts_by_local_month() {
        let d = dataset_with(&[
            (1, secs(2012, 4, 1)),
            (1, secs(2012, 4, 2)),
            (1, secs(2012, 5, 1)),
        ]);
        let s = DatasetStats::compute(&d);
        assert_eq!(
            s.monthly_counts[&MonthKey {
                year: 2012,
                month: 4
            }],
            2
        );
        assert_eq!(
            s.monthly_counts[&MonthKey {
                year: 2012,
                month: 5
            }],
            1
        );
    }

    #[test]
    fn richest_window_finds_peak() {
        // Apr=5, May=1, Jun=4, Jul=0, Aug=1: best 3-month window Apr-Jun=10.
        let mut times = Vec::new();
        for i in 0..5 {
            times.push((1, secs(2012, 4, i + 1)));
        }
        times.push((1, secs(2012, 5, 1)));
        for i in 0..4 {
            times.push((1, secs(2012, 6, i + 1)));
        }
        times.push((1, secs(2012, 8, 1)));
        let s = DatasetStats::compute(&dataset_with(&times));
        let (start, count) = s.richest_window(3).unwrap();
        assert_eq!(
            start,
            MonthKey {
                year: 2012,
                month: 4
            }
        );
        assert_eq!(count, 10);
    }

    #[test]
    fn richest_window_handles_gap_months() {
        // Jan and Dec only: intermediate months are zero-filled.
        let d = dataset_with(&[(1, secs(2012, 1, 1)), (1, secs(2012, 12, 1))]);
        let s = DatasetStats::compute(&d);
        let (_, count) = s.richest_window(3).unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn richest_window_shorter_dataset_than_window() {
        let d = dataset_with(&[(1, secs(2012, 4, 1)), (1, secs(2012, 4, 2))]);
        let s = DatasetStats::compute(&d);
        let (start, count) = s.richest_window(3).unwrap();
        assert_eq!(
            start,
            MonthKey {
                year: 2012,
                month: 4
            }
        );
        assert_eq!(count, 2);
    }

    #[test]
    fn month_key_succ_wraps_year() {
        let dec = MonthKey {
            year: 2012,
            month: 12,
        };
        assert_eq!(
            dec.succ(),
            MonthKey {
                year: 2013,
                month: 1
            }
        );
        assert_eq!(dec.to_string(), "Dec 2012");
    }
}
