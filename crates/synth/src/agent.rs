//! Agent profiles — the behavioural model behind the synthetic data.
//!
//! Each user is an agent with a home, a workplace, and a set of
//! *category habits*: recurring activities described by a venue category
//! and a pool of nearby concrete venues. When the habit fires, the agent
//! picks a venue from the pool at random — the "different Thai place
//! every lunch" flexibility the paper's place abstraction targets.

use crate::rngx;
use crate::venues::VenueUniverse;
use crowdweb_dataset::category::CategoryKind;
use crowdweb_dataset::{UserId, VenueId};
use rand::Rng;

/// A recurring activity: at around `hour` on matching days, with
/// probability `probability`, visit one random venue from `pool`.
#[derive(Debug, Clone, PartialEq)]
pub struct Habit {
    /// Coarse kind of the habit (what the pattern should recover).
    pub kind: CategoryKind,
    /// Candidate venues (the flexibility pool).
    pub pool: Vec<VenueId>,
    /// Local hour of day the habit fires at (0–23).
    pub hour: u8,
    /// Per-matching-day probability of the habit firing.
    pub probability: f64,
    /// Whether the habit applies on weekdays.
    pub on_weekdays: bool,
    /// Whether the habit applies on weekends.
    pub on_weekends: bool,
    /// Whether this is one of the user's *signature* habits — an
    /// activity they nearly always announce when it happens (the
    /// badge-hunting behaviour of real GTSM users). Signature visits
    /// get a large check-in propensity boost, which is what sustains
    /// high-support patterns in sparse data.
    pub signature: bool,
}

/// A synthetic user's behavioural profile.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentProfile {
    /// The user this profile belongs to.
    pub user: UserId,
    /// Home venue (Residence kind).
    pub home: VenueId,
    /// Workplace venue (Professional or CollegeUniversity kind).
    pub work: VenueId,
    /// Whether the agent works Monday–Friday (a small share work
    /// irregular days instead).
    pub regular_schedule: bool,
    /// Probability of a morning transit check-in on workdays.
    pub transit_probability: f64,
    /// Transit venue near home.
    pub transit: VenueId,
    /// Whether arriving at work is a signature check-in (announced
    /// nearly every time).
    pub work_signature: bool,
    /// All recurring habits (lunch, coffee, gym, shops, nightlife,
    /// weekend outings…).
    pub habits: Vec<Habit>,
}

impl AgentProfile {
    /// Generates a profile for `user` against the venue universe.
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        universe: &VenueUniverse,
        user: UserId,
    ) -> AgentProfile {
        let pick = |rng: &mut R, ids: &[VenueId]| ids[rng.gen_range(0..ids.len())];

        let home = pick(rng, universe.of_kind(CategoryKind::Residence));
        // ~12% of agents are students (college workplace).
        let work_kind = if rng.gen_bool(0.12) {
            CategoryKind::CollegeUniversity
        } else {
            CategoryKind::Professional
        };
        let work = pick(rng, universe.of_kind(work_kind));
        let home_loc = universe.venue(home).location();
        let work_loc = universe.venue(work).location();

        let transit_pool = universe.nearest_of_kind(CategoryKind::TravelTransport, home_loc, 3);
        let transit = transit_pool.first().copied().unwrap_or(home); // degenerate universes fall back to home

        let mut habits = Vec::new();

        // Lunch near work: the canonical flexible habit. Pool of 2-5
        // nearby eateries.
        let lunch_pool =
            universe.nearest_of_kind(CategoryKind::Eatery, work_loc, rng.gen_range(3..=8));
        if !lunch_pool.is_empty() {
            habits.push(Habit {
                kind: CategoryKind::Eatery,
                pool: lunch_pool,
                hour: 12,
                probability: rng.gen_range(0.75..0.95),
                on_weekdays: true,
                on_weekends: false,
                signature: false,
            });
        }

        // Morning coffee (60% of agents).
        if rng.gen_bool(0.6) {
            let pool = universe.nearest_of_kind(CategoryKind::Eatery, work_loc, 4);
            habits.push(Habit {
                kind: CategoryKind::Eatery,
                pool,
                hour: 8,
                probability: rng.gen_range(0.4..0.8),
                on_weekdays: true,
                on_weekends: false,
                signature: false,
            });
        }

        // Evening gym (50% of agents).
        if rng.gen_bool(0.5) {
            let pool = universe.nearest_of_kind(CategoryKind::OutdoorsRecreation, home_loc, 3);
            habits.push(Habit {
                kind: CategoryKind::OutdoorsRecreation,
                pool,
                hour: 18,
                probability: rng.gen_range(0.3..0.6),
                on_weekdays: true,
                on_weekends: rng.gen_bool(0.5),
                signature: false,
            });
        }

        // Evening shopping/errands (everyone, low probability).
        let shop_pool = universe.nearest_of_kind(CategoryKind::Shops, home_loc, 6);
        habits.push(Habit {
            kind: CategoryKind::Shops,
            pool: shop_pool,
            hour: 19,
            probability: rng.gen_range(0.15..0.45),
            on_weekdays: true,
            on_weekends: true,
            signature: false,
        });

        // Nightlife (55% of agents, mostly weekend-weighted).
        if rng.gen_bool(0.55) {
            let anchor = if rng.gen_bool(0.5) {
                home_loc
            } else {
                work_loc
            };
            let pool = universe.nearest_of_kind(CategoryKind::NightlifeSpot, anchor, 6);
            habits.push(Habit {
                kind: CategoryKind::NightlifeSpot,
                pool,
                hour: 21,
                probability: rng.gen_range(0.2..0.5),
                on_weekdays: rng.gen_bool(0.3),
                on_weekends: true,
                signature: false,
            });
        }

        // Weekend daytime outing: outdoors or arts.
        let outing_kind = if rng.gen_bool(0.5) {
            CategoryKind::OutdoorsRecreation
        } else {
            CategoryKind::ArtsEntertainment
        };
        habits.push(Habit {
            kind: outing_kind,
            pool: universe.nearest_of_kind(outing_kind, home_loc, 8),
            hour: 14,
            probability: rng.gen_range(0.3..0.7),
            on_weekdays: false,
            on_weekends: true,
            signature: false,
        });

        // Weekend brunch.
        habits.push(Habit {
            kind: CategoryKind::Eatery,
            pool: universe.nearest_of_kind(CategoryKind::Eatery, home_loc, 6),
            hour: 11,
            probability: rng.gen_range(0.3..0.6),
            on_weekdays: false,
            on_weekends: true,
            signature: false,
        });

        habits.retain(|h| !h.pool.is_empty());

        // Mark 1-3 signature habits: activities the user announces
        // almost every time. Weekday habits make better signatures (they
        // recur often enough to certify as patterns).
        if !habits.is_empty() {
            let count = rng.gen_range(1..=3usize.min(habits.len()));
            let picks = rngx::sample_indices(rng, habits.len(), count);
            for i in picks {
                habits[i].signature = true;
            }
        }

        AgentProfile {
            user,
            home,
            work,
            regular_schedule: rng.gen_bool(0.85),
            transit_probability: rng.gen_range(0.2..0.6),
            transit,
            // ~35% of users religiously check in on arriving at work.
            work_signature: rng.gen_bool(0.35),
            habits,
        }
    }

    /// Picks a venue from a habit's pool uniformly at random.
    pub fn choose_from_pool<R: Rng + ?Sized>(rng: &mut R, habit: &Habit) -> VenueId {
        habit.pool[rngx::sample_indices(rng, habit.pool.len(), 1)[0]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile(seed: u64) -> (AgentProfile, VenueUniverse) {
        let config = SynthConfig::small(seed);
        let universe = VenueUniverse::generate(&config);
        let mut rng = StdRng::seed_from_u64(seed);
        (
            AgentProfile::generate(&mut rng, &universe, UserId::new(0)),
            universe,
        )
    }

    #[test]
    fn home_is_residence_work_is_workplace() {
        let (p, u) = profile(1);
        let home_kind = u.taxonomy().kind_of(u.venue(p.home).category()).unwrap();
        assert_eq!(home_kind, CategoryKind::Residence);
        let work_kind = u.taxonomy().kind_of(u.venue(p.work).category()).unwrap();
        assert!(matches!(
            work_kind,
            CategoryKind::Professional | CategoryKind::CollegeUniversity
        ));
    }

    #[test]
    fn has_flexible_lunch_habit() {
        let (p, _) = profile(2);
        let lunch = p
            .habits
            .iter()
            .find(|h| h.hour == 12 && h.kind == CategoryKind::Eatery)
            .expect("every agent has a lunch habit");
        assert!(lunch.pool.len() >= 2, "lunch pool must be flexible");
        assert!(lunch.on_weekdays && !lunch.on_weekends);
    }

    #[test]
    fn habit_pools_are_nonempty_and_valid() {
        let (p, u) = profile(3);
        for h in &p.habits {
            assert!(!h.pool.is_empty());
            assert!((0.0..=1.0).contains(&h.probability));
            assert!(h.hour < 24);
            for &v in &h.pool {
                let kind = u.taxonomy().kind_of(u.venue(v).category()).unwrap();
                assert_eq!(kind, h.kind, "pool venue kind mismatch");
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (a, _) = profile(7);
        let (b, _) = profile(7);
        assert_eq!(a, b);
    }

    #[test]
    fn choose_from_pool_stays_in_pool() {
        let (p, _) = profile(4);
        let mut rng = StdRng::seed_from_u64(9);
        let habit = &p.habits[0];
        for _ in 0..20 {
            let v = AgentProfile::choose_from_pool(&mut rng, habit);
            assert!(habit.pool.contains(&v));
        }
    }
}
