//! Generator configuration.

use crate::{generate, SynthError};
use crowdweb_dataset::{CivilDate, Dataset};
use crowdweb_geo::BoundingBox;
use serde::{Deserialize, Serialize};

/// A one-off city event (concert, game) that draws a city-wide crowd to
/// one venue on one evening — the crowd-management scenario of the
/// paper's introduction. Injected via [`SynthConfig::event`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityEvent {
    /// Display name, e.g. `"stadium concert"`.
    pub name: String,
    /// Day offset from the collection start the event happens on.
    pub day_offset: u32,
    /// Local hour the crowd arrives.
    pub hour: u8,
    /// Probability that any given user attends.
    pub attendance: f64,
}

/// Configuration for the synthetic check-in generator (C-BUILDER: the
/// struct itself is the builder; setters chain and [`SynthConfig::generate`]
/// is the terminal method).
///
/// Defaults reproduce the paper's Foursquare NYC statistics at full
/// scale; [`SynthConfig::small`] gives a fast deterministic miniature
/// for tests.
///
/// # Examples
///
/// ```
/// use crowdweb_synth::SynthConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = SynthConfig::small(1).users(30).generate()?;
/// assert_eq!(dataset.user_count(), 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    pub(crate) seed: u64,
    pub(crate) num_users: usize,
    pub(crate) num_venues: usize,
    pub(crate) num_hotspots: usize,
    pub(crate) bounds: BoundingBox,
    pub(crate) start: CivilDate,
    pub(crate) num_days: u32,
    pub(crate) mean_records_per_user: f64,
    pub(crate) median_records_per_user: f64,
    pub(crate) tz_offset_minutes: i32,
    pub(crate) monthly_engagement_decay: f64,
    #[serde(default)]
    pub(crate) events: Vec<CityEvent>,
}

impl Default for SynthConfig {
    /// Full paper scale: 1,083 users, 11 months from April 2012, NYC
    /// bounds, mean ≈ 210 / median ≈ 153 records per user.
    fn default() -> Self {
        SynthConfig {
            seed: 0xC0FFEE,
            num_users: 1_083,
            num_venues: 12_000,
            num_hotspots: 30,
            bounds: BoundingBox::NYC,
            start: CivilDate::new(2012, 4, 3).expect("valid constant"),
            num_days: 330,
            mean_records_per_user: 210.0,
            median_records_per_user: 153.0,
            tz_offset_minutes: -240,
            monthly_engagement_decay: 0.90,
            events: Vec::new(),
        }
    }
}

impl SynthConfig {
    /// Full paper-scale configuration (see [`Default`]).
    pub fn paper_nyc() -> SynthConfig {
        SynthConfig::default()
    }

    /// A miniature configuration for tests and quick examples: 40 users,
    /// 400 venues, 3 months starting April 2012, deterministic from
    /// `seed`.
    pub fn small(seed: u64) -> SynthConfig {
        SynthConfig {
            seed,
            num_users: 40,
            num_venues: 400,
            num_hotspots: 8,
            num_days: 91,
            mean_records_per_user: 80.0,
            median_records_per_user: 65.0,
            ..SynthConfig::default()
        }
    }

    /// Sets the RNG seed (generation is fully deterministic in it).
    pub fn seed(mut self, seed: u64) -> SynthConfig {
        self.seed = seed;
        self
    }

    /// Sets the number of users.
    pub fn users(mut self, n: usize) -> SynthConfig {
        self.num_users = n;
        self
    }

    /// Sets the number of venues in the universe.
    pub fn venues(mut self, n: usize) -> SynthConfig {
        self.num_venues = n;
        self
    }

    /// Sets the number of spatial hotspots venues cluster around.
    pub fn hotspots(mut self, n: usize) -> SynthConfig {
        self.num_hotspots = n;
        self
    }

    /// Sets the city bounding box.
    pub fn bounds(mut self, bounds: BoundingBox) -> SynthConfig {
        self.bounds = bounds;
        self
    }

    /// Sets the first collection day.
    pub fn start(mut self, start: CivilDate) -> SynthConfig {
        self.start = start;
        self
    }

    /// Sets the number of collection days.
    pub fn days(mut self, n: u32) -> SynthConfig {
        self.num_days = n;
        self
    }

    /// Sets the per-user record-count distribution via its mean and
    /// median (log-normal).
    pub fn records_per_user(mut self, mean: f64, median: f64) -> SynthConfig {
        self.mean_records_per_user = mean;
        self.median_records_per_user = median;
        self
    }

    /// Sets the fixed timezone offset stamped on records (minutes east of
    /// UTC; New York EDT is −240, the default).
    pub fn tz_offset(mut self, minutes: i32) -> SynthConfig {
        self.tz_offset_minutes = minutes;
        self
    }

    /// Injects a one-off city event (see [`CityEvent`]); may be called
    /// multiple times.
    pub fn event(mut self, event: CityEvent) -> SynthConfig {
        self.events.push(event);
        self
    }

    /// The configured events.
    pub fn events(&self) -> &[CityEvent] {
        &self.events
    }

    /// Sets the month-over-month engagement decay factor in `(0, 1]`.
    /// 1.0 means uniform months; lower values concentrate check-ins in
    /// the early (April–June) window as in the real data.
    pub fn engagement_decay(mut self, factor: f64) -> SynthConfig {
        self.monthly_engagement_decay = factor;
        self
    }

    /// Number of users this configuration will generate.
    pub fn user_count(&self) -> usize {
        self.num_users
    }

    /// Number of collection days.
    pub fn day_count(&self) -> u32 {
        self.num_days
    }

    /// First collection day.
    pub fn start_date(&self) -> CivilDate {
        self.start
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), SynthError> {
        if self.num_users == 0 {
            return Err(SynthError::InvalidConfig("num_users must be positive"));
        }
        if self.num_venues < 50 {
            return Err(SynthError::InvalidConfig(
                "num_venues must be at least 50 to cover all categories",
            ));
        }
        if self.num_hotspots == 0 {
            return Err(SynthError::InvalidConfig("num_hotspots must be positive"));
        }
        if self.num_days == 0 {
            return Err(SynthError::InvalidConfig("num_days must be positive"));
        }
        if !(self.mean_records_per_user.is_finite() && self.mean_records_per_user > 0.0) {
            return Err(SynthError::InvalidConfig(
                "mean_records_per_user must be positive",
            ));
        }
        if !(self.median_records_per_user.is_finite() && self.median_records_per_user > 0.0) {
            return Err(SynthError::InvalidConfig(
                "median_records_per_user must be positive",
            ));
        }
        if self.mean_records_per_user < self.median_records_per_user {
            return Err(SynthError::InvalidConfig(
                "mean_records_per_user must be >= median (log-normal)",
            ));
        }
        if !(0.0 < self.monthly_engagement_decay && self.monthly_engagement_decay <= 1.0) {
            return Err(SynthError::InvalidConfig(
                "monthly_engagement_decay must be in (0, 1]",
            ));
        }
        if !(-840..=840).contains(&self.tz_offset_minutes) {
            return Err(SynthError::InvalidConfig(
                "tz_offset_minutes must be within +-14 hours",
            ));
        }
        for e in &self.events {
            if e.day_offset >= self.num_days {
                return Err(SynthError::InvalidConfig(
                    "event day_offset outside the collection period",
                ));
            }
            if e.hour >= 24 {
                return Err(SynthError::InvalidConfig("event hour must be 0-23"));
            }
            if !(0.0..=1.0).contains(&e.attendance) {
                return Err(SynthError::InvalidConfig(
                    "event attendance must be in [0, 1]",
                ));
            }
        }
        Ok(())
    }

    /// Runs the generator and produces the dataset (terminal method).
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::InvalidConfig`] if [`Self::validate`] fails.
    pub fn generate(&self) -> Result<Dataset, SynthError> {
        self.validate()?;
        generate::run(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_scale() {
        let c = SynthConfig::default();
        assert_eq!(c.num_users, 1_083);
        assert_eq!(c.mean_records_per_user, 210.0);
        assert_eq!(c.median_records_per_user, 153.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn small_is_valid() {
        assert!(SynthConfig::small(0).validate().is_ok());
    }

    #[test]
    fn validate_rejects_each_bad_field() {
        assert!(SynthConfig::small(0).users(0).validate().is_err());
        assert!(SynthConfig::small(0).venues(10).validate().is_err());
        assert!(SynthConfig::small(0).hotspots(0).validate().is_err());
        assert!(SynthConfig::small(0).days(0).validate().is_err());
        assert!(SynthConfig::small(0)
            .records_per_user(0.0, 1.0)
            .validate()
            .is_err());
        assert!(SynthConfig::small(0)
            .records_per_user(10.0, 20.0)
            .validate()
            .is_err());
        assert!(SynthConfig::small(0)
            .engagement_decay(0.0)
            .validate()
            .is_err());
        assert!(SynthConfig::small(0)
            .engagement_decay(1.5)
            .validate()
            .is_err());
        assert!(SynthConfig::small(0).tz_offset(10_000).validate().is_err());
    }

    #[test]
    fn setters_chain() {
        let c = SynthConfig::small(1).users(5).days(10).seed(9);
        assert_eq!(c.user_count(), 5);
        assert_eq!(c.day_count(), 10);
        assert_eq!(c.seed, 9);
    }
}
