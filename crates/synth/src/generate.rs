//! The simulation loop: agents visit venues day by day, then voluntary
//! check-in thinning calibrates the record counts.

use crate::agent::AgentProfile;
use crate::rngx;
use crate::venues::VenueUniverse;
use crate::{SynthConfig, SynthError};
use crowdweb_dataset::{CheckIn, CivilDate, Dataset, Timestamp, UserId, VenueId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One candidate visit before check-in thinning.
#[derive(Debug, Clone, Copy)]
struct Visit {
    venue: VenueId,
    date: CivilDate,
    hour: u8,
    minute: u8,
    second: u8,
    /// Zero-based month index since the start date, for engagement decay.
    month_index: u32,
    /// Relative propensity to *announce* this visit (kind-dependent).
    announce_weight: f64,
}

/// Relative check-in (announcement) propensity per venue kind, indexed
/// by [`crowdweb_dataset::CategoryKind::index`]. GTSM users broadcast
/// outings (eateries, nightlife, events, travel) far more readily than
/// being at home or at their desk — a well-documented Foursquare bias
/// that concentrates records on the interesting parts of a routine.
const ANNOUNCE_WEIGHTS: [f64; 9] = [
    2.2, // ArtsEntertainment
    1.0, // CollegeUniversity
    2.0, // Eatery
    2.5, // NightlifeSpot
    1.6, // OutdoorsRecreation
    0.9, // Professional
    0.5, // Residence
    1.4, // Shops
    1.2, // TravelTransport
];

/// Multiplier applied to a signature visit's announce weight. Large
/// enough that signature routines are recorded on most of their
/// occurrences, which is what keeps patterns alive at the paper's
/// higher support thresholds (0.5-0.75).
const SIGNATURE_BOOST: f64 = 10.0;

/// Runs the generator (entry point used by [`SynthConfig::generate`]).
pub(crate) fn run(config: &SynthConfig) -> Result<Dataset, SynthError> {
    let universe = VenueUniverse::generate(config);
    // Resolve each event to a fixed entertainment venue, round-robin
    // over the universe's entertainment stock.
    let arts = universe.of_kind(crowdweb_dataset::CategoryKind::ArtsEntertainment);
    let event_venues: Vec<(u32, u8, f64, VenueId)> = config
        .events
        .iter()
        .enumerate()
        .map(|(i, e)| (e.day_offset, e.hour, e.attendance, arts[i % arts.len()]))
        .collect();
    let mut builder = Dataset::builder();
    builder.taxonomy(universe.taxonomy().clone());
    for v in universe.venues() {
        builder.add_venue(v.clone());
    }

    for user_idx in 0..config.num_users {
        let user = UserId::new(user_idx as u32);
        // Per-user RNG stream: independent of other users, so changing
        // num_users does not reshuffle everyone.
        let mut rng = StdRng::seed_from_u64(
            config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(user_idx as u64),
        );
        let profile = AgentProfile::generate(&mut rng, &universe, user);
        let visits = simulate_visits(&mut rng, config, &universe, &profile, &event_venues);
        let selected = thin_to_target(&mut rng, config, &visits);
        for v in selected {
            builder.add_checkin(make_checkin(config, user, &v));
        }
    }

    Ok(builder.build()?)
}

/// Simulates every (unthinned) visit an agent makes over the collection
/// period.
fn simulate_visits(
    rng: &mut StdRng,
    config: &SynthConfig,
    universe: &VenueUniverse,
    profile: &AgentProfile,
    event_venues: &[(u32, u8, f64, VenueId)],
) -> Vec<Visit> {
    let mut visits = Vec::new();
    let start_days = config.start.to_epoch_days();
    let start_month = (config.start.year(), config.start.month());

    for day_offset in 0..config.num_days {
        let date = CivilDate::from_epoch_days(start_days + i64::from(day_offset));
        let month_index = months_between(start_month, (date.year(), date.month()));
        let weekend = date.weekday().is_weekend();
        let workday = if profile.regular_schedule {
            !weekend
        } else {
            // Irregular workers: 5 random-ish days via a hash of the date.
            (date.to_epoch_days() * 2_654_435_761 % 7) < 5
        };

        let mut push = |rng: &mut StdRng, venue: VenueId, hour: u8, signature: bool| {
            let kind = universe
                .taxonomy()
                .kind_of(universe.venue(venue).category())
                .expect("universe venues are categorized");
            let boost = if signature { SIGNATURE_BOOST } else { 1.0 };
            visits.push(Visit {
                venue,
                date,
                hour,
                minute: rng.gen_range(0..60),
                second: rng.gen_range(0..60),
                month_index,
                announce_weight: ANNOUNCE_WEIGHTS[kind.index()] * boost,
            });
        };

        if workday {
            // Morning at home, transit, arrival at work.
            push(rng, profile.home, 7, false);
            if rng.gen_bool(profile.transit_probability) {
                push(rng, profile.transit, 8, false);
            }
            push(rng, profile.work, 9, profile.work_signature);
            // Occasionally a second workplace check-in after lunch.
            if rng.gen_bool(0.3) {
                push(rng, profile.work, 14, false);
            }
        } else {
            // Late morning at home.
            push(rng, profile.home, 9, false);
        }

        for habit in &profile.habits {
            let applies = if weekend || !workday {
                habit.on_weekends
            } else {
                habit.on_weekdays
            };
            if applies && rng.gen_bool(habit.probability) {
                let venue = AgentProfile::choose_from_pool(rng, habit);
                push(rng, venue, habit.hour, habit.signature);
            }
        }

        // City events: a crowd converges on one venue. Attending is a
        // highly announceable visit.
        for &(event_day, hour, attendance, venue) in event_venues {
            if event_day == day_offset && rng.gen_bool(attendance) {
                push(rng, venue, hour, true);
            }
        }

        // Evening return home.
        push(rng, profile.home, 22, false);
    }
    visits
}

/// Whole months from `from` to `to` (both `(year, month)`), clamped at 0.
fn months_between(from: (i32, u8), to: (i32, u8)) -> u32 {
    let a = from.0 * 12 + i32::from(from.1);
    let b = to.0 * 12 + i32::from(to.1);
    (b - a).max(0) as u32
}

/// Thins visits down to a per-user record target drawn from the
/// configured log-normal, weighting early months higher (engagement
/// decay). Weighted sampling without replacement via the
/// Efraimidis–Spirakis exponential-key trick.
fn thin_to_target(rng: &mut StdRng, config: &SynthConfig, visits: &[Visit]) -> Vec<Visit> {
    if visits.is_empty() {
        return Vec::new();
    }
    let target_f = rngx::lognormal_mean_median(
        rng,
        config.mean_records_per_user,
        config.median_records_per_user,
    );
    let target = (rngx::stochastic_round(rng, target_f) as usize).clamp(1, visits.len());

    let mut keyed: Vec<(f64, usize)> = visits
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let w = (config.monthly_engagement_decay.powi(v.month_index as i32)
                * v.announce_weight)
                .max(1e-9);
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            // Smaller key = more likely selected; weight divides the
            // exponential draw.
            (-u.ln() / w, i)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut selected: Vec<Visit> = keyed[..target].iter().map(|&(_, i)| visits[i]).collect();
    selected.sort_by_key(|v| (v.date, v.hour, v.minute, v.second));
    selected
}

/// Converts a local-time visit into a UTC check-in record.
fn make_checkin(config: &SynthConfig, user: UserId, v: &Visit) -> CheckIn {
    let local = Timestamp::from_civil(
        v.date.year(),
        v.date.month(),
        v.date.day(),
        v.hour,
        v.minute,
        v.second,
    )
    .expect("simulated visit times are valid");
    let utc = local.plus_seconds(-i64::from(config.tz_offset_minutes) * 60);
    CheckIn::new(user, v.venue, utc, config.tz_offset_minutes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_dataset::DatasetStats;

    #[test]
    fn generates_requested_users() {
        let d = SynthConfig::small(1).generate().unwrap();
        assert_eq!(d.user_count(), 40);
        assert!(!d.is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = SynthConfig::small(5).generate().unwrap();
        let b = SynthConfig::small(5).generate().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.checkins(), b.checkins());
        let c = SynthConfig::small(6).generate().unwrap();
        assert_ne!(a.checkins(), c.checkins());
    }

    #[test]
    fn adding_users_preserves_existing_streams() {
        let a = SynthConfig::small(5).users(10).generate().unwrap();
        let b = SynthConfig::small(5).users(20).generate().unwrap();
        for u in a.user_ids() {
            assert_eq!(a.checkins_of(u), b.checkins_of(u), "user {u} reshuffled");
        }
    }

    #[test]
    fn checkins_are_local_daytime_plausible() {
        let d = SynthConfig::small(2).generate().unwrap();
        for c in d.checkins().iter().take(500) {
            let local = c.local_time();
            assert!((7..=22).contains(&local.hour), "hour {}", local.hour);
        }
    }

    #[test]
    fn collection_period_respected() {
        let config = SynthConfig::small(3);
        let d = config.generate().unwrap();
        let start = config.start_date().to_epoch_days();
        let end = start + i64::from(config.day_count());
        for c in d.checkins() {
            let day = c.local_date().to_epoch_days();
            assert!((start..end).contains(&day));
        }
    }

    #[test]
    fn dataset_is_sparse_like_paper() {
        let d = SynthConfig::small(4).generate().unwrap();
        let stats = DatasetStats::compute(&d);
        assert!(stats.is_sparse(), "{stats:?}");
    }

    #[test]
    fn engagement_decay_enriches_early_months() {
        // 6-month run with strong decay: first 3 months must hold more
        // records than the last 3.
        let config = SynthConfig::small(8).days(182).engagement_decay(0.7);
        let d = config.generate().unwrap();
        let stats = DatasetStats::compute(&d);
        let months: Vec<usize> = stats.monthly_counts.values().copied().collect();
        assert!(months.len() >= 6, "{months:?}");
        let early: usize = months[..3].iter().sum();
        let late: usize = months[months.len() - 3..].iter().sum();
        assert!(early > late, "early {early} late {late}");
        let (richest, _) = stats.richest_window(3).unwrap();
        assert_eq!(
            (richest.year, richest.month),
            (2012, 4),
            "richest window should start at the collection start"
        );
    }

    #[test]
    fn mean_and_median_near_targets() {
        // Use a mid-sized run for tighter statistics.
        let config = SynthConfig::small(17)
            .users(150)
            .days(330)
            .records_per_user(210.0, 153.0);
        let d = config.generate().unwrap();
        let stats = DatasetStats::compute(&d);
        // The log-normal's std is ~mean, so the sample-mean std over
        // 150 users is ~17; allow ~2 sigma.
        assert!(
            (stats.mean_records_per_user - 210.0).abs() < 35.0,
            "mean {}",
            stats.mean_records_per_user
        );
        assert!(
            (stats.median_records_per_user - 153.0).abs() < 25.0,
            "median {}",
            stats.median_records_per_user
        );
    }

    #[test]
    fn temporal_rhythm_matches_gtsm_character() {
        use crowdweb_dataset::ActivityProfile;
        let d = SynthConfig::small(23).generate().unwrap();
        let profile = ActivityProfile::of_dataset(&d);
        let hourly = profile.hourly_totals();
        // Daytime and evening dominate the small hours.
        let night: u64 = hourly[0..6].iter().sum();
        let day: u64 = hourly[8..22].iter().sum();
        assert!(day > night * 5, "day {day} night {night}");
        // Lunch hour is busy (the flexible-lunch habit).
        assert!(hourly[12] > hourly[15], "{hourly:?}");
        // Weekends hold a meaningful share but less than 2/7 + slack of
        // the mass (weekday routines dominate).
        let wf = profile.weekend_fraction();
        assert!((0.1..0.45).contains(&wf), "weekend fraction {wf}");
    }

    #[test]
    fn events_draw_a_crowd_on_their_day() {
        use crate::config::CityEvent;
        let config = SynthConfig::small(77).event(CityEvent {
            name: "stadium concert".into(),
            day_offset: 10,
            hour: 20,
            attendance: 0.9,
        });
        let d = config.generate().unwrap();
        // Find the venue with the most check-ins on day 10 at hour 20.
        let event_date = CivilDate::from_epoch_days(config.start_date().to_epoch_days() + 10);
        let mut per_venue: std::collections::HashMap<VenueId, usize> =
            std::collections::HashMap::new();
        for c in d.checkins() {
            let local = c.local_time();
            if local.date == event_date && local.hour == 20 {
                *per_venue.entry(c.venue()).or_insert(0) += 1;
            }
        }
        let peak = per_venue.values().max().copied().unwrap_or(0);
        // With 40 users at 90% attendance and a strong announce boost, a
        // sizable crowd must be recorded at one venue.
        assert!(peak >= 10, "event crowd too small: {peak}");
    }

    #[test]
    fn event_validation() {
        use crate::config::CityEvent;
        let bad_day = SynthConfig::small(1).event(CityEvent {
            name: "x".into(),
            day_offset: 9999,
            hour: 20,
            attendance: 0.5,
        });
        assert!(bad_day.validate().is_err());
        let bad_hour = SynthConfig::small(1).event(CityEvent {
            name: "x".into(),
            day_offset: 1,
            hour: 24,
            attendance: 0.5,
        });
        assert!(bad_hour.validate().is_err());
        let bad_att = SynthConfig::small(1).event(CityEvent {
            name: "x".into(),
            day_offset: 1,
            hour: 20,
            attendance: 1.5,
        });
        assert!(bad_att.validate().is_err());
    }

    #[test]
    fn months_between_clamps() {
        assert_eq!(months_between((2012, 4), (2012, 4)), 0);
        assert_eq!(months_between((2012, 4), (2012, 6)), 2);
        assert_eq!(months_between((2012, 4), (2013, 2)), 10);
        assert_eq!(months_between((2012, 4), (2012, 1)), 0);
    }

    #[test]
    fn lunch_flexibility_visible_in_data() {
        // At least one user should visit 2+ distinct eatery venues at
        // local noon — the Thai-lunch phenomenon.
        let d = SynthConfig::small(10).generate().unwrap();
        let tax = d.taxonomy();
        let mut found = false;
        for u in d.user_ids() {
            let mut noon_venues: Vec<VenueId> = d
                .checkins_of(u)
                .iter()
                .filter(|c| c.local_time().hour == 12)
                .filter(|c| {
                    let v = d.venue(c.venue()).unwrap();
                    tax.kind_of(v.category()) == Some(crowdweb_dataset::CategoryKind::Eatery)
                })
                .map(|c| c.venue())
                .collect();
            noon_venues.sort();
            noon_venues.dedup();
            if noon_venues.len() >= 2 {
                found = true;
                break;
            }
        }
        assert!(found, "no flexible lunch behaviour in sample");
    }
}
