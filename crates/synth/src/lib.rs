//! Synthetic GTSM check-in generator, calibrated to the CrowdWeb paper's
//! Foursquare New York City dataset.
//!
//! The real Foursquare data (227,428 check-ins by 1,083 users, April 2012
//! to February 2013) is not redistributable, so this crate *simulates*
//! it: agents with homes, workplaces, and probabilistic daily routines
//! move through a synthetic venue universe laid over the NYC bounding
//! box and voluntarily check in at some of their visits.
//!
//! Three properties of the real data matter to CrowdWeb's evaluation and
//! are reproduced deliberately:
//!
//! 1. **Sparsity** — voluntary check-ins give each user far fewer records
//!    than visits (the paper: mean ≈ 210, median ≈ 153 records over
//!    ~330 days, i.e. less than one per day). Per-user record targets are
//!    drawn from a log-normal distribution with exactly that mean/median
//!    and the selection step thins visits to hit the targets.
//! 2. **Monthly richness** — engagement decays over the collection
//!    period, making April–June the richest three-month window, which the
//!    paper selects for its experiments.
//! 3. **Flexible routines** — agents have *category* habits, not venue
//!    habits: a "Thai lunch" agent picks a different Thai venue from a
//!    pool each day. This is precisely the phenomenon CrowdWeb's place
//!    abstraction exists to detect.
//!
//! # Examples
//!
//! ```
//! use crowdweb_synth::SynthConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small deterministic dataset for tests and examples.
//! let dataset = SynthConfig::small(42).generate()?;
//! assert!(dataset.len() > 0);
//! assert_eq!(dataset.user_count(), SynthConfig::small(42).user_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod config;
pub mod error;
pub mod generate;
pub mod rngx;
pub mod venues;

pub use agent::AgentProfile;
pub use config::{CityEvent, SynthConfig};
pub use error::SynthError;
pub use venues::VenueUniverse;
