//! Error type for synthetic generation.

use std::error::Error;
use std::fmt;

/// Error produced by [`crate::SynthConfig`] validation or generation.
#[derive(Debug)]
pub enum SynthError {
    /// A configuration field was out of range.
    InvalidConfig(&'static str),
    /// The underlying dataset build failed (should not happen for
    /// generator output; indicates a bug).
    Dataset(crowdweb_dataset::DatasetError),
    /// A geographic operation failed (should not happen for in-bounds
    /// generation; indicates a bug).
    Geo(crowdweb_geo::GeoError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::InvalidConfig(what) => write!(f, "invalid generator config: {what}"),
            SynthError::Dataset(e) => write!(f, "dataset build failed: {e}"),
            SynthError::Geo(e) => write!(f, "geographic operation failed: {e}"),
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::InvalidConfig(_) => None,
            SynthError::Dataset(e) => Some(e),
            SynthError::Geo(e) => Some(e),
        }
    }
}

impl From<crowdweb_dataset::DatasetError> for SynthError {
    fn from(e: crowdweb_dataset::DatasetError) -> Self {
        SynthError::Dataset(e)
    }
}

impl From<crowdweb_geo::GeoError> for SynthError {
    fn from(e: crowdweb_geo::GeoError) -> Self {
        SynthError::Geo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SynthError>();
    }

    #[test]
    fn source_chains() {
        let e = SynthError::from(crowdweb_geo::GeoError::EmptyGrid);
        assert!(e.source().is_some());
        assert!(SynthError::InvalidConfig("x").source().is_none());
    }
}
