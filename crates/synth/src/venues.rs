//! Synthetic venue universe generation.
//!
//! Venues are not uniform over the city: real check-in venues cluster in
//! neighbourhoods. The universe scatters *hotspot* centres over the
//! bounding box and places venues around them with normally distributed
//! offsets, assigning categories with realistic kind weights (eateries
//! and shops dominate, as in the Foursquare data).

use crate::rngx;
use crate::SynthConfig;
use crowdweb_dataset::category::CategoryKind;
use crowdweb_dataset::{Taxonomy, Venue, VenueId};
use crowdweb_geo::LatLon;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative frequency of each [`CategoryKind`] in the venue universe,
/// indexed by [`CategoryKind::index`]. Roughly mirrors the Foursquare NYC
/// category mix.
pub const KIND_WEIGHTS: [f64; 9] = [
    0.07, // ArtsEntertainment
    0.04, // CollegeUniversity
    0.30, // Eatery
    0.08, // NightlifeSpot
    0.09, // OutdoorsRecreation
    0.13, // Professional
    0.10, // Residence
    0.13, // Shops
    0.06, // TravelTransport
];

/// The generated venue universe: venues plus kind-indexed lookup tables.
#[derive(Debug, Clone)]
pub struct VenueUniverse {
    venues: Vec<Venue>,
    taxonomy: Taxonomy,
    by_kind: [Vec<VenueId>; 9],
    hotspots: Vec<LatLon>,
}

impl VenueUniverse {
    /// Generates the universe for a configuration. Deterministic in
    /// `config.seed`.
    pub fn generate(config: &SynthConfig) -> VenueUniverse {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EED_0001);
        let taxonomy = Taxonomy::foursquare();
        let bounds = config.bounds;

        // Hotspot centres, kept away from the extreme edges.
        let hotspots: Vec<LatLon> = (0..config.num_hotspots)
            .map(|_| bounds.lerp(rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9)))
            .collect();

        // Venue placement: pick a hotspot (early ones are "denser" via a
        // geometric-ish weight), offset by a ~700 m Gaussian scatter.
        let hotspot_weights: Vec<f64> = (0..hotspots.len())
            .map(|i| 1.0 / (1.0 + i as f64 * 0.15))
            .collect();
        let mut venues = Vec::with_capacity(config.num_venues);
        let mut by_kind: [Vec<VenueId>; 9] = Default::default();

        for i in 0..config.num_venues {
            let id = VenueId::new(i as u32);
            // Guarantee at least a few venues of every kind by cycling
            // kinds for the first few dozen venues.
            let kind = if i < 4 * CategoryKind::ALL.len() {
                CategoryKind::ALL[i % CategoryKind::ALL.len()]
            } else {
                CategoryKind::ALL
                    [rngx::weighted_index(&mut rng, &KIND_WEIGHTS).expect("weights positive")]
            };
            let cat_ids = taxonomy.ids_of_kind(kind);
            let cat = cat_ids[rng.gen_range(0..cat_ids.len())];

            let h = rngx::weighted_index(&mut rng, &hotspot_weights).expect("weights positive");
            let bearing = rng.gen_range(0.0..360.0);
            let dist = rngx::normal(&mut rng, 0.0, 700.0).abs();
            let loc = bounds.clamp(hotspots[h].destination(bearing, dist));

            let name = format!(
                "{} #{i}",
                taxonomy.name_of(cat).expect("registered category")
            );
            venues.push(Venue::new(id, &name, loc, cat));
            by_kind[kind.index()].push(id);
        }

        VenueUniverse {
            venues,
            taxonomy,
            by_kind,
            hotspots,
        }
    }

    /// All venues, id-ordered.
    pub fn venues(&self) -> &[Venue] {
        &self.venues
    }

    /// The taxonomy venues were categorized against.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// The hotspot centres venues cluster around.
    pub fn hotspots(&self) -> &[LatLon] {
        &self.hotspots
    }

    /// A venue by id (ids are dense, so this is an index).
    pub fn venue(&self, id: VenueId) -> &Venue {
        &self.venues[id.index()]
    }

    /// All venue ids of a kind.
    pub fn of_kind(&self, kind: CategoryKind) -> &[VenueId] {
        &self.by_kind[kind.index()]
    }

    /// Up to `k` venues of `kind` nearest to `near`, ordered by distance.
    /// This is how agents build their habit pools ("the Thai places near
    /// work").
    pub fn nearest_of_kind(&self, kind: CategoryKind, near: LatLon, k: usize) -> Vec<VenueId> {
        let mut candidates: Vec<(f64, VenueId)> = self.by_kind[kind.index()]
            .iter()
            .map(|&id| (near.equirectangular_m(self.venue(id).location()), id))
            .collect();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
        candidates.truncate(k);
        candidates.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> VenueUniverse {
        VenueUniverse::generate(&SynthConfig::small(3))
    }

    #[test]
    fn every_kind_represented() {
        let u = universe();
        for kind in CategoryKind::ALL {
            assert!(!u.of_kind(kind).is_empty(), "kind {kind} empty");
        }
    }

    #[test]
    fn venues_inside_bounds() {
        let u = universe();
        let bounds = SynthConfig::small(3).bounds;
        for v in u.venues() {
            assert!(bounds.contains(v.location()), "{v}");
        }
    }

    #[test]
    fn ids_are_dense() {
        let u = universe();
        for (i, v) in u.venues().iter().enumerate() {
            assert_eq!(v.id().index(), i);
        }
        assert_eq!(u.venues().len(), 400);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = VenueUniverse::generate(&SynthConfig::small(5));
        let b = VenueUniverse::generate(&SynthConfig::small(5));
        assert_eq!(a.venues(), b.venues());
        let c = VenueUniverse::generate(&SynthConfig::small(6));
        assert_ne!(a.venues(), c.venues());
    }

    #[test]
    fn nearest_of_kind_sorted_by_distance() {
        let u = universe();
        let near = SynthConfig::small(3).bounds.center();
        let ids = u.nearest_of_kind(CategoryKind::Eatery, near, 5);
        assert!(ids.len() <= 5 && !ids.is_empty());
        let dists: Vec<f64> = ids
            .iter()
            .map(|&id| near.equirectangular_m(u.venue(id).location()))
            .collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn eateries_dominate() {
        let u = VenueUniverse::generate(&SynthConfig::small(3).venues(2_000));
        let eateries = u.of_kind(CategoryKind::Eatery).len();
        let colleges = u.of_kind(CategoryKind::CollegeUniversity).len();
        assert!(
            eateries > colleges * 3,
            "eateries {eateries} colleges {colleges}"
        );
    }

    #[test]
    fn kind_weights_sum_to_one() {
        let total: f64 = KIND_WEIGHTS.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
