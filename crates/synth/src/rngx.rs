//! Random-sampling helpers on top of `rand`.
//!
//! The approved dependency set includes `rand` but not `rand_distr`, so
//! the handful of distributions the generator needs (normal, log-normal,
//! weighted choice, Poisson-ish counts) are implemented here.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mean, std_dev²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Samples a log-normal with the given *median* and *mean*.
///
/// For `LogNormal(mu, sigma)`, `median = exp(mu)` and
/// `mean = exp(mu + sigma²/2)`, so `sigma = sqrt(2 ln(mean/median))`.
/// This parameterization matches how the paper reports its per-user
/// record counts (mean ≈ 210, median ≈ 153).
///
/// # Panics
///
/// Panics if `median <= 0` or `mean < median` (no such log-normal
/// exists).
pub fn lognormal_mean_median<R: Rng + ?Sized>(rng: &mut R, mean: f64, median: f64) -> f64 {
    assert!(median > 0.0, "median must be positive");
    assert!(mean >= median, "mean must be >= median for a log-normal");
    let mu = median.ln();
    let sigma = (2.0 * (mean / median).ln()).sqrt();
    (mu + sigma * standard_normal(rng)).exp()
}

/// Picks an index in `[0, weights.len())` with probability proportional
/// to `weights[i]`. Returns `None` for an empty slice or non-positive
/// total weight.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            if target < w {
                return Some(i);
            }
            target -= w;
        }
    }
    // Floating-point slack: fall back to the last positive weight.
    weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
}

/// Stochastic rounding: `floor(x)` or `ceil(x)` with probability equal
/// to the fractional part, so the expectation is exactly `x`.
pub fn stochastic_round<R: Rng + ?Sized>(rng: &mut R, x: f64) -> u64 {
    if x <= 0.0 {
        return 0;
    }
    let floor = x.floor();
    let frac = x - floor;
    floor as u64 + u64::from(rng.gen_bool(frac.clamp(0.0, 1.0)))
}

/// Samples `k` distinct indices from `[0, n)` uniformly (partial
/// Fisher–Yates). If `k >= n`, returns all of `0..n`.
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let k = k.min(n);
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_var() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_matches_target_mean_and_median() {
        let mut r = rng();
        let n = 40_000;
        let mut samples: Vec<f64> = (0..n)
            .map(|_| lognormal_mean_median(&mut r, 210.0, 153.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        assert!((mean - 210.0).abs() < 10.0, "mean {mean}");
        assert!((median - 153.0).abs() < 6.0, "median {median}");
    }

    #[test]
    #[should_panic(expected = "mean must be >=")]
    fn lognormal_rejects_mean_below_median() {
        lognormal_mean_median(&mut rng(), 100.0, 153.0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut r, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn weighted_index_edge_cases() {
        let mut r = rng();
        assert_eq!(weighted_index(&mut r, &[]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 0.0]), None);
        assert_eq!(weighted_index(&mut r, &[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    fn stochastic_round_expectation() {
        let mut r = rng();
        let total: u64 = (0..10_000).map(|_| stochastic_round(&mut r, 2.3)).sum();
        let mean = total as f64 / 10_000.0;
        assert!((mean - 2.3).abs() < 0.05, "mean {mean}");
        assert_eq!(stochastic_round(&mut r, -1.0), 0);
        assert_eq!(stochastic_round(&mut r, 0.0), 0);
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = rng();
        let s = sample_indices(&mut r, 100, 10);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(s.iter().all(|&i| i < 100));
        // k >= n returns everything.
        assert_eq!(sample_indices(&mut r, 3, 10).len(), 3);
    }
}
