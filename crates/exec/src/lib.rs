//! Shared execution layer for the CrowdWeb pipeline.
//!
//! Two building blocks the mine→aggregate stages have in common:
//!
//! - [`Parallelism`] and [`parallel_map`]: a scoped worker pool over a
//!   shared claim queue whose results are always merged back in input
//!   order, so every caller is byte-deterministic regardless of thread
//!   count or scheduling.
//! - [`Symbol`] and [`SymbolTable`]: a dense `u32` interner that turns
//!   heap-heavy sequence items into machine-word symbols for the
//!   columnar sequence database and the miners that walk it.
//! - [`EpochCell`]: epoch-style `Arc` snapshot publication — readers
//!   clone the current snapshot without blocking behind writers; a
//!   writer swaps whole immutable snapshots atomically.
//! - [`EpochStore`]: an [`EpochCell`] that additionally retains a
//!   bounded ring of past epochs for historical lookup by epoch id,
//!   with an eviction fold for invariants anchored on the oldest
//!   retained entry.
//! - [`WorkerPool`]: a persistent, bounded worker pool for serving
//!   workloads — long-lived threads draining an open-ended job stream,
//!   with non-blocking saturation-aware submission so callers can shed
//!   load instead of queueing without limit.

#![forbid(unsafe_code)]

mod epoch;
mod pool;
mod symbol;
mod workers;

pub use epoch::{EpochCell, EpochStore};
pub use pool::{
    parallel_map, parallel_map_observed, parallel_map_with_index, Parallelism, FANOUT_SECONDS,
};
pub use symbol::{Symbol, SymbolTable};
pub use workers::{PoolSaturated, WorkerPool};
