//! Epoch-style snapshot publication.
//!
//! [`EpochCell`] publishes immutable `Arc<T>` snapshots to many reader
//! threads while a single writer swaps in new epochs. It is the safe
//! equivalent of the classic arc-swap pattern: two slots plus an atomic
//! index. Readers load the active index and clone the `Arc` out of that
//! slot; the writer prepares the *inactive* slot and then flips the
//! index. A reader therefore never waits behind pipeline work — the
//! only lock it touches is a read lock on a slot the writer is not
//! updating, held just long enough to clone an `Arc`.
//!
//! The slot a writer updates can still be pinned by a straggling reader
//! that loaded the index just before the *previous* flip; the write
//! lock simply waits out that clone (nanoseconds), which is what makes
//! the pattern expressible without `unsafe`.

use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A two-slot epoch cell: lock-free-in-practice reads of an immutable
/// snapshot, atomic whole-snapshot swaps by a writer.
///
/// # Examples
///
/// ```
/// use crowdweb_exec::EpochCell;
/// use std::sync::Arc;
///
/// let cell = EpochCell::new(Arc::new(vec![1, 2, 3]));
/// assert_eq!(cell.epoch(), 0);
/// let before = cell.load();
/// cell.store(Arc::new(vec![4]));
/// assert_eq!(*before, vec![1, 2, 3]); // old readers keep their epoch
/// assert_eq!(*cell.load(), vec![4]);
/// assert_eq!(cell.epoch(), 1);
/// ```
#[derive(Debug)]
pub struct EpochCell<T> {
    slots: [RwLock<Arc<T>>; 2],
    active: AtomicUsize,
    epoch: AtomicU64,
    /// Serializes writers so two concurrent `store`s cannot both target
    /// the same "inactive" slot and double-flip back to a stale value.
    writer: Mutex<()>,
}

impl<T> EpochCell<T> {
    /// Creates a cell publishing `initial` as epoch 0.
    pub fn new(initial: Arc<T>) -> EpochCell<T> {
        EpochCell {
            slots: [RwLock::new(Arc::clone(&initial)), RwLock::new(initial)],
            active: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            writer: Mutex::new(()),
        }
    }

    /// The currently published snapshot. Readers clone the `Arc` and
    /// can keep using the snapshot for as long as they like; later
    /// `store`s never mutate it.
    pub fn load(&self) -> Arc<T> {
        let idx = self.active.load(Ordering::Acquire);
        Arc::clone(&self.slots[idx].read())
    }

    /// Publishes a new snapshot, incrementing the epoch. Readers that
    /// loaded before the flip keep the old `Arc`; readers after see the
    /// new one. Writers are serialized internally.
    pub fn store(&self, next: Arc<T>) {
        let _writer = self.writer.lock();
        let inactive = self.active.load(Ordering::Acquire) ^ 1;
        *self.slots[inactive].write() = next;
        self.active.store(inactive, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Number of `store`s performed so far (the published generation).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

/// An [`EpochCell`] that also retains a bounded ring of past epochs.
///
/// The latest snapshot stays O(1) and contention-free — `latest` and
/// `epoch` go straight to the inner cell. Historical lookups by epoch
/// id take one short mutex on the ring, held only to clone an `Arc`
/// out: retained epochs are contiguous, so `get` is an index
/// computation, not a scan.
///
/// Writers go through [`Self::store`] (or [`Self::store_with`]), which
/// publishes to the cell and appends to the ring atomically with
/// respect to other writers. When the ring is full the oldest entry is
/// evicted; `store_with` hands the evicted value and the new oldest
/// entry to a fold so the caller can maintain invariants that anchor on
/// the oldest retained epoch (e.g. "the oldest entry is always a full
/// snapshot, never a delta").
///
/// # Examples
///
/// ```
/// use crowdweb_exec::EpochStore;
/// use std::sync::Arc;
///
/// let store = EpochStore::new(Arc::new(10u32), 2);
/// store.store(Arc::new(11));
/// store.store(Arc::new(12)); // epoch 0 falls off the ring
/// assert_eq!(*store.latest(), 12);
/// assert_eq!(store.epoch(), 2);
/// assert_eq!(store.retained(), (1, 2));
/// assert_eq!(store.get(1).as_deref(), Some(&11));
/// assert_eq!(store.get(0), None);
/// ```
#[derive(Debug)]
pub struct EpochStore<T> {
    cell: EpochCell<T>,
    /// `(epoch id, snapshot)` pairs with contiguous ascending ids; the
    /// back entry always mirrors what the cell publishes.
    ring: Mutex<VecDeque<(u64, Arc<T>)>>,
    capacity: usize,
}

impl<T> EpochStore<T> {
    /// Creates a store publishing `initial` as epoch 0 and retaining at
    /// most `capacity` epochs (clamped to at least 1: the latest epoch
    /// is always retained).
    pub fn new(initial: Arc<T>, capacity: usize) -> EpochStore<T> {
        let capacity = capacity.max(1);
        let mut ring = VecDeque::with_capacity(capacity + 1);
        ring.push_back((0, Arc::clone(&initial)));
        EpochStore {
            cell: EpochCell::new(initial),
            ring: Mutex::new(ring),
            capacity,
        }
    }

    /// The currently published snapshot (O(1), no ring lock).
    pub fn latest(&self) -> Arc<T> {
        self.cell.load()
    }

    /// The published epoch number.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// The maximum number of epochs retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many epochs are currently retained (always at least 1).
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether the ring is empty — it never is, so this is always
    /// `false`; provided for the conventional `len`/`is_empty` pair.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The inclusive `(oldest, newest)` retained epoch ids.
    pub fn retained(&self) -> (u64, u64) {
        let ring = self.ring.lock();
        let oldest = ring.front().expect("ring is never empty").0;
        let newest = ring.back().expect("ring is never empty").0;
        (oldest, newest)
    }

    /// The snapshot published at `epoch`, if still retained.
    pub fn get(&self, epoch: u64) -> Option<Arc<T>> {
        let ring = self.ring.lock();
        let oldest = ring.front().expect("ring is never empty").0;
        if epoch < oldest {
            return None;
        }
        let index = usize::try_from(epoch - oldest).ok()?;
        ring.get(index).map(|(_, snap)| Arc::clone(snap))
    }

    /// Every retained `(id, snapshot)` from the oldest epoch through
    /// `epoch` inclusive, or `None` if `epoch` is not retained. One
    /// lock acquisition, so the returned chain is a consistent prefix —
    /// no concurrent store can evict entries out from under a caller
    /// walking it.
    pub fn up_to(&self, epoch: u64) -> Option<Vec<(u64, Arc<T>)>> {
        let ring = self.ring.lock();
        let oldest = ring.front().expect("ring is never empty").0;
        if epoch < oldest {
            return None;
        }
        let index = usize::try_from(epoch - oldest).ok()?;
        if index >= ring.len() {
            return None;
        }
        Some(
            ring.iter()
                .take(index + 1)
                .map(|(id, snap)| (*id, Arc::clone(snap)))
                .collect(),
        )
    }

    /// Every retained `(id, snapshot)` pair, oldest first.
    pub fn entries(&self) -> Vec<(u64, Arc<T>)> {
        self.ring
            .lock()
            .iter()
            .map(|(id, snap)| (*id, Arc::clone(snap)))
            .collect()
    }

    /// Publishes a new snapshot, returning its epoch id. Equivalent to
    /// [`Self::store_with`] with a fold that never promotes.
    pub fn store(&self, next: Arc<T>) -> u64 {
        self.store_with(next, |_, _| None)
    }

    /// Publishes a new snapshot and, if the ring overflowed, hands the
    /// evicted oldest value together with the *new* oldest value to
    /// `fold`; a `Some` return replaces the new oldest snapshot. The
    /// whole step — publish, append, evict, promote — happens under one
    /// ring lock, so readers never observe an oldest entry whose
    /// invariant is mid-repair.
    pub fn store_with(&self, next: Arc<T>, fold: impl FnOnce(&T, &T) -> Option<T>) -> u64 {
        let mut ring = self.ring.lock();
        self.cell.store(Arc::clone(&next));
        let epoch = self.cell.epoch();
        ring.push_back((epoch, next));
        if ring.len() > self.capacity {
            let (_, evicted) = ring.pop_front().expect("ring is never empty");
            let front = ring.front_mut().expect("capacity >= 1");
            if let Some(promoted) = fold(&evicted, &front.1) {
                front.1 = Arc::new(promoted);
            }
        }
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_latest_store() {
        let cell = EpochCell::new(Arc::new(1u32));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        cell.store(Arc::new(3));
        assert_eq!(*cell.load(), 3);
        assert_eq!(cell.epoch(), 2);
    }

    #[test]
    fn old_readers_keep_their_snapshot() {
        let cell = EpochCell::new(Arc::new("old".to_owned()));
        let pinned = cell.load();
        cell.store(Arc::new("new".to_owned()));
        assert_eq!(*pinned, "old");
        assert_eq!(*cell.load(), "new");
    }

    #[test]
    fn concurrent_readers_see_monotonic_epochs() {
        let cell = Arc::new(EpochCell::new(Arc::new(0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let seen = *cell.load();
                    assert!(seen >= last, "snapshot went backwards: {seen} < {last}");
                    last = seen;
                }
            }));
        }
        for gen in 1..=500u64 {
            cell.store(Arc::new(gen));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load(), 500);
        assert_eq!(cell.epoch(), 500);
    }

    #[test]
    fn concurrent_writers_are_serialized() {
        let cell = Arc::new(EpochCell::new(Arc::new(0usize)));
        let mut writers = Vec::new();
        for w in 0..4 {
            let cell = Arc::clone(&cell);
            writers.push(std::thread::spawn(move || {
                for i in 0..100 {
                    cell.store(Arc::new(w * 1000 + i));
                }
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(cell.epoch(), 400);
        // The final value is whichever store ran last, but it must be
        // one that was actually stored (no torn slot state).
        let last = *cell.load();
        assert!((0..4000).contains(&last));
    }

    #[test]
    fn store_retains_a_bounded_contiguous_ring() {
        let store = EpochStore::new(Arc::new(0u64), 4);
        assert_eq!(store.len(), 1);
        assert_eq!(store.retained(), (0, 0));
        for gen in 1..=10u64 {
            assert_eq!(store.store(Arc::new(gen)), gen);
        }
        assert_eq!(store.epoch(), 10);
        assert_eq!(store.len(), 4);
        assert_eq!(store.capacity(), 4);
        assert!(!store.is_empty());
        assert_eq!(store.retained(), (7, 10));
        for gen in 7..=10u64 {
            assert_eq!(store.get(gen).as_deref(), Some(&gen));
        }
        assert_eq!(store.get(6), None);
        assert_eq!(store.get(11), None);
        assert_eq!(*store.latest(), 10);
    }

    #[test]
    fn up_to_returns_the_prefix_chain() {
        let store = EpochStore::new(Arc::new(0u64), 8);
        for gen in 1..=5u64 {
            store.store(Arc::new(gen));
        }
        let chain = store.up_to(3).unwrap();
        let ids: Vec<u64> = chain.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(*chain[3].1, 3);
        assert!(store.up_to(6).is_none());
        assert_eq!(store.up_to(0).unwrap().len(), 1);
        assert_eq!(store.entries().len(), 6);
    }

    #[test]
    fn store_with_promotes_the_new_oldest_entry() {
        // Values track whether they are "checkpoints" (even numbers in
        // this toy): on eviction the fold folds the evicted value into
        // the new front, mimicking delta→full promotion.
        let store = EpochStore::new(Arc::new(0i64), 2);
        store.store(Arc::new(1));
        // Ring is full: this store evicts epoch 0 and promotes epoch 1
        // to evicted + front.
        store.store_with(Arc::new(2), |evicted, front| Some(evicted + front + 100));
        assert_eq!(store.retained(), (1, 2));
        assert_eq!(*store.get(1).unwrap(), 101);
        assert_eq!(*store.get(2).unwrap(), 2);
        // A fold returning None leaves the new front untouched.
        store.store_with(Arc::new(3), |_, _| None);
        assert_eq!(*store.get(2).unwrap(), 2);
    }

    #[test]
    fn capacity_one_always_keeps_the_latest() {
        let store = EpochStore::new(Arc::new(0u32), 0); // clamped to 1
        assert_eq!(store.capacity(), 1);
        store.store(Arc::new(7));
        assert_eq!(store.retained(), (1, 1));
        assert_eq!(store.get(0), None);
        assert_eq!(*store.get(1).unwrap(), 7);
    }

    #[test]
    fn concurrent_history_readers_see_consistent_chains() {
        let store = Arc::new(EpochStore::new(Arc::new(0u64), 8));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let (oldest, newest) = store.retained();
                    assert!(newest - oldest < 8);
                    if let Some(chain) = store.up_to(newest) {
                        // Entries are contiguous and each value equals
                        // its id (the writer stores gen at epoch gen).
                        for (i, (id, v)) in chain.iter().enumerate() {
                            assert_eq!(*id, chain[0].0 + i as u64);
                            assert_eq!(**v, *id);
                        }
                    }
                }
            }));
        }
        for gen in 1..=2000u64 {
            store.store(Arc::new(gen));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(store.retained(), (1993, 2000));
    }
}
