//! Epoch-style snapshot publication.
//!
//! [`EpochCell`] publishes immutable `Arc<T>` snapshots to many reader
//! threads while a single writer swaps in new epochs. It is the safe
//! equivalent of the classic arc-swap pattern: two slots plus an atomic
//! index. Readers load the active index and clone the `Arc` out of that
//! slot; the writer prepares the *inactive* slot and then flips the
//! index. A reader therefore never waits behind pipeline work — the
//! only lock it touches is a read lock on a slot the writer is not
//! updating, held just long enough to clone an `Arc`.
//!
//! The slot a writer updates can still be pinned by a straggling reader
//! that loaded the index just before the *previous* flip; the write
//! lock simply waits out that clone (nanoseconds), which is what makes
//! the pattern expressible without `unsafe`.

use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A two-slot epoch cell: lock-free-in-practice reads of an immutable
/// snapshot, atomic whole-snapshot swaps by a writer.
///
/// # Examples
///
/// ```
/// use crowdweb_exec::EpochCell;
/// use std::sync::Arc;
///
/// let cell = EpochCell::new(Arc::new(vec![1, 2, 3]));
/// assert_eq!(cell.epoch(), 0);
/// let before = cell.load();
/// cell.store(Arc::new(vec![4]));
/// assert_eq!(*before, vec![1, 2, 3]); // old readers keep their epoch
/// assert_eq!(*cell.load(), vec![4]);
/// assert_eq!(cell.epoch(), 1);
/// ```
#[derive(Debug)]
pub struct EpochCell<T> {
    slots: [RwLock<Arc<T>>; 2],
    active: AtomicUsize,
    epoch: AtomicU64,
    /// Serializes writers so two concurrent `store`s cannot both target
    /// the same "inactive" slot and double-flip back to a stale value.
    writer: Mutex<()>,
}

impl<T> EpochCell<T> {
    /// Creates a cell publishing `initial` as epoch 0.
    pub fn new(initial: Arc<T>) -> EpochCell<T> {
        EpochCell {
            slots: [RwLock::new(Arc::clone(&initial)), RwLock::new(initial)],
            active: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            writer: Mutex::new(()),
        }
    }

    /// The currently published snapshot. Readers clone the `Arc` and
    /// can keep using the snapshot for as long as they like; later
    /// `store`s never mutate it.
    pub fn load(&self) -> Arc<T> {
        let idx = self.active.load(Ordering::Acquire);
        Arc::clone(&self.slots[idx].read())
    }

    /// Publishes a new snapshot, incrementing the epoch. Readers that
    /// loaded before the flip keep the old `Arc`; readers after see the
    /// new one. Writers are serialized internally.
    pub fn store(&self, next: Arc<T>) {
        let _writer = self.writer.lock();
        let inactive = self.active.load(Ordering::Acquire) ^ 1;
        *self.slots[inactive].write() = next;
        self.active.store(inactive, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Number of `store`s performed so far (the published generation).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_latest_store() {
        let cell = EpochCell::new(Arc::new(1u32));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        cell.store(Arc::new(3));
        assert_eq!(*cell.load(), 3);
        assert_eq!(cell.epoch(), 2);
    }

    #[test]
    fn old_readers_keep_their_snapshot() {
        let cell = EpochCell::new(Arc::new("old".to_owned()));
        let pinned = cell.load();
        cell.store(Arc::new("new".to_owned()));
        assert_eq!(*pinned, "old");
        assert_eq!(*cell.load(), "new");
    }

    #[test]
    fn concurrent_readers_see_monotonic_epochs() {
        let cell = Arc::new(EpochCell::new(Arc::new(0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let seen = *cell.load();
                    assert!(seen >= last, "snapshot went backwards: {seen} < {last}");
                    last = seen;
                }
            }));
        }
        for gen in 1..=500u64 {
            cell.store(Arc::new(gen));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load(), 500);
        assert_eq!(cell.epoch(), 500);
    }

    #[test]
    fn concurrent_writers_are_serialized() {
        let cell = Arc::new(EpochCell::new(Arc::new(0usize)));
        let mut writers = Vec::new();
        for w in 0..4 {
            let cell = Arc::clone(&cell);
            writers.push(std::thread::spawn(move || {
                for i in 0..100 {
                    cell.store(Arc::new(w * 1000 + i));
                }
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(cell.epoch(), 400);
        // The final value is whichever store ran last, but it must be
        // one that was actually stored (no torn slot state).
        let last = *cell.load();
        assert!((0..4000).contains(&last));
    }
}
