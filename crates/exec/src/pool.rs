//! Deterministic scoped fan-out.
//!
//! [`parallel_map`] distributes items over a crossbeam claim queue and
//! scoped worker threads, then merges the results back in input order.
//! Because merging sorts by item index, the output is identical for any
//! thread count — parallelism changes wall-clock time, never bytes.

use std::num::NonZeroUsize;

/// How much hardware a pipeline stage may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run on the calling thread.
    #[default]
    Sequential,
    /// Run on exactly this many worker threads (0 and 1 both mean
    /// sequential).
    Threads(usize),
    /// Use every available core.
    Auto,
}

impl Parallelism {
    /// The number of worker threads this policy resolves to on the
    /// current machine (1 means "stay on the calling thread").
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Whether this policy spawns worker threads.
    pub fn is_parallel(self) -> bool {
        self.worker_count() > 1
    }

    /// A stable metrics-label spelling of this policy (`"sequential"`,
    /// `"threads_4"`, `"auto"`).
    pub fn label(self) -> String {
        match self {
            Parallelism::Sequential => "sequential".to_owned(),
            Parallelism::Threads(n) => format!("threads_{n}"),
            Parallelism::Auto => "auto".to_owned(),
        }
    }
}

/// Applies `f` to every item, possibly on several threads, returning
/// results in input order.
///
/// The deterministic-ordering contract is the point: callers may fold
/// the output sequentially and still get byte-identical artifacts under
/// any [`Parallelism`].
pub fn parallel_map<T, U, F>(parallelism: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with_index(parallelism, items, |_, item| f(item))
}

/// [`parallel_map`] whose closure also receives the item's input index.
///
/// The index lets a caller address pre-registered per-slot state — the
/// sharded ingest engine uses it to time each shard's re-mine into that
/// shard's own histogram handle — without smuggling the index through
/// the item type. Same ordering contract as [`parallel_map`].
pub fn parallel_map_with_index<T, U, F>(parallelism: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = parallelism.worker_count().min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(idx, item)| f(idx, item))
            .collect();
    }

    // Claim queue: each worker pulls the next unclaimed index, so an
    // expensive item never stalls the remaining work behind it.
    let (claim_tx, claim_rx) = crossbeam::channel::bounded::<usize>(items.len());
    for idx in 0..items.len() {
        claim_tx
            .send(idx)
            .expect("claim queue cannot disconnect while the sender is held");
    }
    drop(claim_tx);

    let merged = parking_lot::Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let claim_rx = claim_rx.clone();
            let merged = &merged;
            let f = &f;
            scope.spawn(move || {
                let mut local = Vec::new();
                while let Ok(idx) = claim_rx.recv() {
                    local.push((idx, f(idx, &items[idx])));
                }
                merged.lock().extend(local);
            });
        }
    });

    let mut indexed = merged.into_inner();
    debug_assert_eq!(indexed.len(), items.len());
    indexed.sort_unstable_by_key(|&(idx, _)| idx);
    indexed.into_iter().map(|(_, value)| value).collect()
}

/// Family name for per-fan-out wall-time recorded by
/// [`parallel_map_observed`], labelled `{stage, policy}`.
pub const FANOUT_SECONDS: &str = "crowdweb_exec_fanout_seconds";

/// [`parallel_map`], optionally timed.
///
/// When `metrics` is `Some`, the whole fan-out's wall-clock time is
/// recorded into the [`FANOUT_SECONDS`] histogram under the given stage
/// name and this policy's [`Parallelism::label`]. Timing never touches
/// the mapped values, so output stays byte-identical with metrics on or
/// off.
pub fn parallel_map_observed<T, U, F>(
    parallelism: Parallelism,
    items: &[T],
    f: F,
    metrics: Option<(&crowdweb_obs::MetricsRegistry, &str)>,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let started = std::time::Instant::now();
    let out = parallel_map(parallelism, items, f);
    if let Some((registry, stage)) = metrics {
        registry
            .histogram(
                FANOUT_SECONDS,
                "Wall-clock seconds per parallel_map fan-out, by stage and policy.",
                &[("stage", stage), ("policy", &parallelism.label())],
                &crowdweb_obs::DEFAULT_LATENCY_BUCKETS,
            )
            .observe(started.elapsed().as_secs_f64());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_maps_in_order() {
        let out = parallel_map(Parallelism::Sequential, &[1, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn empty_input_is_fine_under_any_policy() {
        let empty: [u32; 0] = [];
        for p in [
            Parallelism::Sequential,
            Parallelism::Threads(4),
            Parallelism::Auto,
        ] {
            assert!(parallel_map(p, &empty, |x| *x).is_empty());
        }
    }

    #[test]
    fn indexed_map_passes_input_indices() {
        let items = ["a", "b", "c", "d"];
        for p in [Parallelism::Sequential, Parallelism::Threads(3)] {
            let out = parallel_map_with_index(p, &items, |idx, s| format!("{idx}:{s}"));
            assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d"], "{p:?}");
        }
    }

    #[test]
    fn threaded_output_matches_sequential() {
        let items: Vec<u64> = (0..257).collect();
        let work = |x: &u64| {
            // Uneven per-item cost to exercise out-of-order completion.
            let spins = (x % 7) * 50;
            let mut acc = *x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (*x, acc)
        };
        let sequential = parallel_map(Parallelism::Sequential, &items, work);
        for threads in [2, 3, 4, 8] {
            let threaded = parallel_map(Parallelism::Threads(threads), &items, work);
            assert_eq!(threaded, sequential, "{threads} threads");
        }
    }

    #[test]
    fn observed_map_matches_plain_and_records_timing() {
        let registry = crowdweb_obs::MetricsRegistry::new();
        let items: Vec<u64> = (0..64).collect();
        let plain = parallel_map(Parallelism::Threads(4), &items, |x| x * 3);
        let observed = parallel_map_observed(
            Parallelism::Threads(4),
            &items,
            |x| x * 3,
            Some((&registry, "mine")),
        );
        assert_eq!(observed, plain, "timing must not perturb output");
        let (count, sum) = registry
            .histogram_stats(
                FANOUT_SECONDS,
                &[("stage", "mine"), ("policy", "threads_4")],
            )
            .expect("fan-out histogram registered");
        assert_eq!(count, 1);
        assert!(sum >= 0.0);
        // No registry, no recording, same output.
        let silent = parallel_map_observed(Parallelism::Sequential, &items, |x| x * 3, None);
        assert_eq!(silent, plain);
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(Parallelism::Sequential.label(), "sequential");
        assert_eq!(Parallelism::Threads(4).label(), "threads_4");
        assert_eq!(Parallelism::Auto.label(), "auto");
    }

    #[test]
    fn worker_count_resolves_sanely() {
        assert_eq!(Parallelism::Sequential.worker_count(), 1);
        assert_eq!(Parallelism::Threads(0).worker_count(), 1);
        assert_eq!(Parallelism::Threads(6).worker_count(), 6);
        assert!(Parallelism::Auto.worker_count() >= 1);
        assert!(!Parallelism::Sequential.is_parallel());
        assert!(Parallelism::Threads(2).is_parallel());
    }
}
