//! A persistent bounded worker pool for request execution.
//!
//! [`parallel_map`](crate::parallel_map) covers batch fan-out with
//! scoped threads; serving workloads need the opposite shape — long-
//! lived workers draining an *open-ended* stream of independent jobs.
//! [`WorkerPool`] provides that: a fixed set of threads pulling boxed
//! jobs off a bounded crossbeam channel. The bound is the backpressure
//! contract: [`WorkerPool::try_execute`] refuses instead of queueing
//! without limit, so a caller (the server's reactor) can answer 503
//! rather than letting latency grow unbounded.

use crossbeam::channel::{bounded, Sender, TrySendError};
use std::panic::AssertUnwindSafe;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Error returned by [`WorkerPool::try_execute`] when the job queue is
/// at capacity (or the pool is shutting down); carries the job back so
/// the caller can run or refuse it explicitly.
pub struct PoolSaturated(pub Box<dyn FnOnce() + Send + 'static>);

impl std::fmt::Debug for PoolSaturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolSaturated(..)")
    }
}

impl std::fmt::Display for PoolSaturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("worker pool job queue is full")
    }
}

/// A fixed-size thread pool draining a bounded job queue.
///
/// Jobs are independent `FnOnce` closures; a panicking job is caught
/// and logged so the worker survives to run the next one. Dropping the
/// pool closes the queue, lets queued jobs drain, and joins every
/// worker.
///
/// # Examples
///
/// ```
/// use crowdweb_exec::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(2, 8);
/// let done = Arc::new(AtomicUsize::new(0));
/// for _ in 0..4 {
///     let done = Arc::clone(&done);
///     pool.try_execute(move || {
///         done.fetch_add(1, Ordering::SeqCst);
///     })
///     .unwrap();
/// }
/// drop(pool); // joins workers after the queue drains
/// assert_eq!(done.load(Ordering::SeqCst), 4);
/// ```
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.queue_capacity)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` workers (minimum 1) behind a job queue bounded
    /// at `queue_capacity` (minimum 1).
    pub fn new(threads: usize, queue_capacity: usize) -> WorkerPool {
        let queue_capacity = queue_capacity.max(1);
        let (tx, rx) = bounded::<Job>(queue_capacity);
        let workers = (0..threads.max(1))
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        // A panicking job must not take the worker down
                        // with it: catch, log, keep draining.
                        if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
                            eprintln!("crowdweb-exec: worker job panicked; worker recovered");
                        }
                    }
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            queue_capacity,
        }
    }

    /// Enqueues a job without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`PoolSaturated`] (carrying the job) when the queue is
    /// full — the caller decides whether to shed load or retry later.
    pub fn try_execute<F>(&self, job: F) -> Result<(), PoolSaturated>
    where
        F: FnOnce() + Send + 'static,
    {
        let tx = self.tx.as_ref().expect("pool sender lives until drop");
        tx.try_send(Box::new(job)).map_err(|e| match e {
            TrySendError::Full(job) | TrySendError::Disconnected(job) => PoolSaturated(job),
        })
    }

    /// Enqueues a job, blocking until there is queue room. Fails (job
    /// dropped) only if every worker has exited, which cannot happen
    /// before the pool itself is dropped.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let tx = self.tx.as_ref().expect("pool sender lives until drop");
        let _ = tx.send(Box::new(job));
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Jobs queued but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        self.tx.as_ref().map_or(0, Sender::len)
    }

    /// The job queue bound this pool was built with.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the sender lets workers drain the queue and exit.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn runs_every_job_across_workers() {
        let pool = WorkerPool::new(3, 64);
        assert_eq!(pool.worker_count(), 3);
        assert_eq!(pool.queue_capacity(), 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn try_execute_sheds_load_when_saturated() {
        let pool = WorkerPool::new(1, 1);
        let (gate_tx, gate_rx) = crossbeam::channel::bounded::<()>(1);
        // Occupy the single worker until the gate opens.
        pool.execute(move || {
            let _ = gate_rx.recv();
        });
        // Wait for the worker to claim the blocker so the queue slot
        // frees up.
        for _ in 0..200 {
            if pool.queue_depth() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.queue_depth(), 0, "worker never claimed the blocker");
        // Fill the single queue slot...
        pool.try_execute(|| {})
            .expect("one job must fit the queue slot");
        // ...so the next job must bounce: worker busy + queue full.
        match pool.try_execute(|| {}) {
            Err(PoolSaturated(job)) => {
                assert!(!format!("{}", PoolSaturated(job)).is_empty());
            }
            Ok(()) => panic!("a bounded queue must refuse when full"),
        }
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 8);
        pool.execute(|| panic!("boom"));
        let done = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&done);
        pool.execute(move || {
            flag.store(1, Ordering::SeqCst);
        });
        // Dropping joins: the second job must have run on the same
        // (recovered) worker.
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn queue_depth_reports_waiting_jobs() {
        let pool = WorkerPool::new(1, 8);
        let (gate_tx, gate_rx) = crossbeam::channel::bounded::<()>(1);
        pool.execute(move || {
            let _ = gate_rx.recv();
        });
        // Give the worker a moment to claim the blocker so the next
        // jobs sit in the queue.
        std::thread::sleep(Duration::from_millis(50));
        pool.execute(|| {});
        pool.execute(|| {});
        assert!(pool.queue_depth() >= 1);
        gate_tx.send(()).unwrap();
    }
}
