//! Dense symbol interning.
//!
//! The columnar sequence database stores `(place, slot)` items once in
//! a [`SymbolTable`] and refers to them by [`Symbol`] — a `u32` that
//! fits in cache lines, compares in one instruction, and indexes
//! straight into per-symbol arrays inside the miners.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A dense interned identifier: index into its table's item list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a symbol from a dense index (caller promises it is in
    /// range for the table it will be used with).
    pub fn from_index(index: usize) -> Symbol {
        Symbol(u32::try_from(index).expect("more than u32::MAX interned symbols"))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Serializes as the bare dense index.
impl serde::Serialize for Symbol {
    fn to_content(&self) -> serde::Content {
        self.0.to_content()
    }
}

impl serde::Deserialize for Symbol {
    fn from_content(c: &serde::Content) -> Result<Self, serde::Error> {
        Ok(Symbol(u32::from_content(c)?))
    }
}

/// Bidirectional map between items and dense [`Symbol`]s.
///
/// Symbol order mirrors insertion order. Callers that need symbol
/// comparisons to agree with item comparisons (the miners sort patterns
/// by item) should intern in sorted item order — see
/// [`SymbolTable::from_sorted_items`].
#[derive(Debug, Clone)]
pub struct SymbolTable<T> {
    items: Vec<T>,
    index: HashMap<T, Symbol>,
}

impl<T: Clone + Eq + Hash> SymbolTable<T> {
    /// An empty table.
    pub fn new() -> SymbolTable<T> {
        SymbolTable {
            items: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Builds a table whose symbol order equals the given item order.
    ///
    /// With `items` sorted and deduplicated, `Symbol` comparisons agree
    /// with `T` comparisons — the property the miners rely on to keep
    /// decoded pattern sets sorted.
    pub fn from_sorted_items(items: Vec<T>) -> SymbolTable<T> {
        let index = items
            .iter()
            .enumerate()
            .map(|(i, item)| (item.clone(), Symbol::from_index(i)))
            .collect::<HashMap<_, _>>();
        assert_eq!(index.len(), items.len(), "duplicate items in symbol table");
        SymbolTable { items, index }
    }

    /// Interns `item`, returning its existing or freshly assigned
    /// symbol.
    pub fn intern(&mut self, item: &T) -> Symbol {
        if let Some(&sym) = self.index.get(item) {
            return sym;
        }
        let sym = Symbol::from_index(self.items.len());
        self.items.push(item.clone());
        self.index.insert(item.clone(), sym);
        sym
    }

    /// The symbol for `item`, if interned.
    pub fn lookup(&self, item: &T) -> Option<Symbol> {
        self.index.get(item).copied()
    }

    /// The item behind `sym`.
    ///
    /// # Panics
    /// If `sym` came from a different table and is out of range.
    pub fn resolve(&self, sym: Symbol) -> &T {
        &self.items[sym.index()]
    }

    /// Number of distinct interned items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All items in symbol order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// `(symbol, item)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, item)| (Symbol::from_index(i), item))
    }
}

impl<T: Clone + Eq + Hash> Default for SymbolTable<T> {
    fn default() -> SymbolTable<T> {
        SymbolTable::new()
    }
}

/// Equality over the item list only (the hash index is derived state).
impl<T: PartialEq> PartialEq for SymbolTable<T> {
    fn eq(&self, other: &SymbolTable<T>) -> bool {
        self.items == other.items
    }
}

impl<T: Eq> Eq for SymbolTable<T> {}

/// Serializes as the bare item list; the index is rebuilt on read,
/// mirroring how `Dataset` rebuilds its venue index.
impl<T: serde::Serialize> serde::Serialize for SymbolTable<T> {
    fn to_content(&self) -> serde::Content {
        self.items.to_content()
    }
}

impl<T: serde::Deserialize + Clone + Eq + Hash> serde::Deserialize for SymbolTable<T> {
    fn from_content(c: &serde::Content) -> Result<Self, serde::Error> {
        let items = Vec::<T>::from_content(c)?;
        let index = items
            .iter()
            .enumerate()
            .map(|(i, item)| (item.clone(), Symbol::from_index(i)))
            .collect::<HashMap<_, _>>();
        if index.len() != items.len() {
            return Err(serde::Error::msg(
                "duplicate items in serialized symbol table",
            ));
        }
        Ok(SymbolTable { items, index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut table = SymbolTable::new();
        let a = table.intern(&"alpha");
        let b = table.intern(&"beta");
        assert_eq!(table.intern(&"alpha"), a);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(table.len(), 2);
        assert_eq!(*table.resolve(b), "beta");
        assert_eq!(table.lookup(&"beta"), Some(b));
        assert_eq!(table.lookup(&"gamma"), None);
    }

    #[test]
    fn sorted_items_make_symbol_order_agree_with_item_order() {
        let items = vec!["ant", "bee", "cat", "dog"];
        let table = SymbolTable::from_sorted_items(items.clone());
        for pair in items.windows(2) {
            let (a, b) = (
                table.lookup(&pair[0]).unwrap(),
                table.lookup(&pair[1]).unwrap(),
            );
            assert!(a < b);
        }
    }

    #[test]
    fn serde_round_trip_rebuilds_the_index() {
        let table = SymbolTable::from_sorted_items(vec![1u32, 5, 9]);
        let content = serde::Serialize::to_content(&table);
        let back: SymbolTable<u32> = serde::Deserialize::from_content(&content).unwrap();
        assert_eq!(back, table);
        assert_eq!(back.lookup(&5), Some(Symbol::from_index(1)));
    }
}
