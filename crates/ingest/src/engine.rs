//! The epoch-based ingest engine: queue → WAL → snapshot swap.

use crate::{
    CrowdHistory, EpochInfo, EpochMode, EpochReport, IngestError, IngestStats, PlatformSnapshot,
    SubmitReceipt, Wal, WalConfig, WalEntry,
};
use crowdweb_crowd::CrowdModel;
use crowdweb_crowd::{CrowdBuilder, CrowdDelta, PipelineDriver, TimeWindows};
use crowdweb_dataset::{Dataset, MergeRecord, UserId};
use crowdweb_exec::{EpochCell, Parallelism};
use crowdweb_geo::BoundingBox;
use crowdweb_mobility::{PatternMiner, UserPatterns};
use crowdweb_obs::{Counter, Gauge, Histogram, MetricsRegistry, EPOCH_LATENCY_BUCKETS};
use crowdweb_prep::{PrepUpdate, Prepared, Preprocessor};
use parking_lot::Mutex;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Everything the engine needs to build and rebuild snapshots.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Preprocessing configuration (window, filter, slotting, labels).
    pub preprocessor: Preprocessor,
    /// Relative mining support threshold.
    pub min_support: f64,
    /// Display windows of the crowd model.
    pub windows: TimeWindows,
    /// Display grid bounds.
    pub bounds: BoundingBox,
    /// Display grid rows.
    pub grid_rows: u32,
    /// Display grid columns.
    pub grid_cols: u32,
    /// Execution policy threaded through every parallel stage.
    pub parallelism: Parallelism,
    /// Bounded queue capacity; batches that would exceed it are
    /// rejected whole with [`IngestError::Backpressure`].
    pub queue_capacity: usize,
    /// When set, a submit leaving the queue at or above this depth runs
    /// an epoch inline before returning.
    pub epoch_batch: Option<usize>,
    /// When set, accepted records are logged durably and replayed on
    /// [`IngestEngine::open`].
    pub wal: Option<WalConfig>,
    /// When set, the engine records ingest metrics (queue depth, WAL
    /// bytes, epoch latency) and threads the registry through the
    /// pipeline stages. Never affects snapshot contents.
    pub metrics: Option<MetricsRegistry>,
    /// Shard count for [`ShardedIngestEngine`](crate::ShardedIngestEngine):
    /// `0` (the default) resolves to the machine's available
    /// parallelism, capped at [`MAX_SHARDS`](crate::shard::MAX_SHARDS).
    /// The unsharded [`IngestEngine`] ignores this field.
    pub shards: usize,
    /// How many published epochs the engine's
    /// [`CrowdHistory`](crate::CrowdHistory) retains for the server's
    /// `?epoch=N` time travel. Clamped to ≥ 1 (the latest epoch is
    /// always retained).
    pub history_depth: usize,
    /// Force a full checkpoint (instead of a delta splice) into the
    /// epoch history every this-many epochs, bounding reconstruction
    /// chains. Clamped to ≥ 1.
    pub checkpoint_every: u64,
}

impl Default for IngestConfig {
    /// Mirrors the server defaults: paper preprocessor, 0.15 support,
    /// hourly windows, 20 × 20 NYC grid, auto parallelism, a 65 536
    /// record queue, manual epochs, no WAL, 16 retained history epochs
    /// with a checkpoint every 8.
    fn default() -> IngestConfig {
        IngestConfig {
            preprocessor: Preprocessor::new(),
            min_support: 0.15,
            windows: TimeWindows::hourly(),
            bounds: BoundingBox::NYC,
            grid_rows: 20,
            grid_cols: 20,
            parallelism: Parallelism::Auto,
            queue_capacity: 65_536,
            epoch_batch: None,
            wal: None,
            metrics: None,
            shards: 0,
            history_depth: 16,
            checkpoint_every: 8,
        }
    }
}

impl IngestConfig {
    pub(crate) fn driver(&self) -> Result<PipelineDriver, IngestError> {
        Ok(PipelineDriver::new(self.min_support)?
            .preprocessor(self.preprocessor)
            .windows(self.windows.clone())
            .grid(self.bounds, self.grid_rows, self.grid_cols)
            .parallelism(self.parallelism)
            .metrics(self.metrics.clone()))
    }

    pub(crate) fn miner(&self) -> Result<PatternMiner, IngestError> {
        Ok(PatternMiner::new(self.min_support)
            .map_err(crowdweb_crowd::PipelineError::Mobility)?
            .parallelism(self.parallelism)
            .metrics(self.metrics.clone()))
    }
}

/// Pre-registered handles for the engine's hot-path metrics, so submits
/// and epochs never touch the registry's family table.
#[derive(Debug, Clone)]
pub(crate) struct IngestMetrics {
    pub(crate) registry: MetricsRegistry,
    pub(crate) accepted: Counter,
    pub(crate) wal_bytes: Counter,
    pub(crate) wal_records: Counter,
    pub(crate) queue_depth: Gauge,
    pub(crate) epoch_seconds: Histogram,
    pub(crate) dirty_users: Gauge,
}

impl IngestMetrics {
    pub(crate) fn new(registry: MetricsRegistry) -> IngestMetrics {
        IngestMetrics {
            accepted: registry.counter(
                "crowdweb_ingest_accepted_total",
                "Records accepted into the ingest queue.",
                &[],
            ),
            wal_bytes: registry.counter(
                "crowdweb_ingest_wal_appended_bytes_total",
                "Bytes appended to active WAL segments.",
                &[],
            ),
            wal_records: registry.counter(
                "crowdweb_ingest_wal_appended_records_total",
                "Records appended to active WAL segments.",
                &[],
            ),
            queue_depth: registry.gauge(
                "crowdweb_ingest_queue_depth",
                "Records currently queued for the next epoch.",
                &[],
            ),
            epoch_seconds: registry.histogram(
                "crowdweb_ingest_epoch_seconds",
                "Wall-clock seconds from epoch start to snapshot publication.",
                &[],
                &EPOCH_LATENCY_BUCKETS,
            ),
            dirty_users: registry.gauge(
                "crowdweb_ingest_epoch_dirty_users",
                "Users recomputed by the most recent epoch.",
                &[],
            ),
            registry,
        }
    }

    pub(crate) fn count_epoch(&self, mode: EpochMode) {
        let label = match mode {
            EpochMode::Incremental => "incremental",
            EpochMode::FullRebuild => "full_rebuild",
        };
        self.registry
            .counter(
                "crowdweb_ingest_epochs_total",
                "Published epochs, by rebuild mode.",
                &[("mode", label)],
            )
            .inc();
    }
}

/// Mutable engine internals. One mutex covers the queue, the WAL, and
/// the applied log so WAL append order always equals queue order —
/// that ordering is what makes crash replay deterministic.
#[derive(Debug)]
struct Inner {
    queue: VecDeque<WalEntry>,
    wal: Option<Wal>,
    /// Entries applied to the published snapshot, ascending by seq;
    /// rewritten into the checkpoint after each epoch.
    applied: Vec<WalEntry>,
    next_seq: u64,
    total_accepted: u64,
    total_applied: u64,
    epochs_run: u64,
    full_rebuilds: u64,
    last_epoch: Option<EpochReport>,
}

/// The live-ingestion engine (see the [crate docs](crate)).
///
/// Readers call [`Self::snapshot`] and never block behind ingestion;
/// writers submit batches that are framed into the WAL and queued, and
/// epochs fold the queue into a fresh [`PlatformSnapshot`] swapped in
/// atomically.
#[derive(Debug)]
pub struct IngestEngine {
    config: IngestConfig,
    cell: EpochCell<PlatformSnapshot>,
    inner: Mutex<Inner>,
    /// Serializes epochs without blocking submitters or readers.
    epoch_guard: Mutex<()>,
    history: CrowdHistory,
    metrics: Option<IngestMetrics>,
}

impl IngestEngine {
    /// Opens the engine over a base dataset: replays the WAL (when
    /// configured), merges every surviving record, cold-builds the
    /// epoch-0 snapshot on the merged dataset, and rewrites the
    /// checkpoint so replayed segments are compacted away.
    ///
    /// # Errors
    ///
    /// WAL I/O or corruption errors, merge failures, and pipeline
    /// failures from the cold build.
    pub fn open(base: Dataset, config: IngestConfig) -> Result<IngestEngine, IngestError> {
        let (mut wal, recovered) = match &config.wal {
            Some(wal_config) => {
                let (wal, recovery) = Wal::open(wal_config)?;
                (Some(wal), Some(recovery))
            }
            None => (None, None),
        };
        let (applied, next_seq) = match recovered {
            Some(recovery) => {
                let next = recovery.last_seq + 1;
                (recovery.entries, next)
            }
            None => (Vec::new(), 1),
        };
        let records: Vec<MergeRecord> = applied.iter().map(|e| e.record.clone()).collect();
        let merged = base.merge_records(&records)?;
        let out = config.driver()?.run(&merged)?;
        let snapshot = PlatformSnapshot::new(
            0,
            merged,
            out.prepared,
            out.patterns,
            out.grid,
            out.crowd,
            config.min_support,
        );
        if let Some(wal) = wal.as_mut() {
            // Fold replayed segments (including a truncated torn tail)
            // into a fresh checkpoint.
            let last_seq = applied.last().map_or(0, |e| e.seq);
            wal.checkpoint(last_seq, &applied)?;
        }
        let metrics = config.metrics.clone().map(IngestMetrics::new);
        let history = CrowdHistory::new(
            snapshot.crowd_arc(),
            config.history_depth,
            config.checkpoint_every,
            config.metrics.as_ref(),
        );
        Ok(IngestEngine {
            metrics,
            history,
            config,
            cell: EpochCell::new(Arc::new(snapshot)),
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                wal,
                applied,
                next_seq,
                total_accepted: 0,
                total_applied: 0,
                epochs_run: 0,
                full_rebuilds: 0,
                last_epoch: None,
            }),
            epoch_guard: Mutex::new(()),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// The currently published snapshot (wait-free for practical
    /// purposes; see [`EpochCell`]).
    pub fn snapshot(&self) -> Arc<PlatformSnapshot> {
        self.cell.load()
    }

    /// The published epoch number.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Records currently queued.
    pub fn queue_depth(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Accepts a batch: assigns sequence numbers, appends the batch to
    /// the WAL (durably, when configured), and enqueues it — all under
    /// one lock, so log order equals queue order. If the queue would
    /// overflow the whole batch is rejected. When
    /// [`IngestConfig::epoch_batch`] is reached, an epoch runs inline
    /// and its report rides on the receipt.
    ///
    /// # Errors
    ///
    /// [`IngestError::Backpressure`] on a full queue and WAL I/O
    /// errors both reject the batch atomically (nothing queued, the
    /// sequence numbers released) — the client may retry. An inline
    /// epoch that fails *after* acceptance returns
    /// [`IngestError::EpochFailed`] carrying the accepted range — the
    /// batch is held by the engine and must **not** be re-submitted.
    pub fn submit(&self, records: Vec<MergeRecord>) -> Result<SubmitReceipt, IngestError> {
        let (first_seq, last_seq, depth) = {
            let mut inner = self.inner.lock();
            if inner.queue.len() + records.len() > self.config.queue_capacity {
                return Err(IngestError::Backpressure {
                    queued: inner.queue.len(),
                    capacity: self.config.queue_capacity,
                    rejected: records.len(),
                });
            }
            if records.is_empty() {
                return Ok(SubmitReceipt {
                    accepted: 0,
                    first_seq: 0,
                    last_seq: 0,
                    queue_depth: inner.queue.len(),
                    epoch: None,
                });
            }
            let first_seq = inner.next_seq;
            let entries: Vec<WalEntry> = records
                .into_iter()
                .enumerate()
                .map(|(i, record)| WalEntry {
                    seq: first_seq + i as u64,
                    record,
                })
                .collect();
            let last_seq = entries.last().expect("non-empty").seq;
            inner.next_seq = last_seq + 1;
            if let Some(wal) = inner.wal.as_mut() {
                let bytes_before = wal.segment_bytes();
                let mark = wal.mark();
                if let Err(e) = wal.append(&entries) {
                    // Reject atomically: discard whatever the failed
                    // append left in the segment and release the batch's
                    // sequence numbers so a client retry is safe. If the
                    // rollback itself fails the numbers stay consumed —
                    // replay may then resurrect the batch, so the client
                    // must not re-submit (at-least-once under a double
                    // fault; see DESIGN.md §9).
                    if wal.rollback_to(mark).is_ok() {
                        inner.next_seq = first_seq;
                    }
                    return Err(e);
                }
                if let Some(metrics) = &self.metrics {
                    metrics
                        .wal_bytes
                        .add(wal.segment_bytes().saturating_sub(bytes_before));
                    metrics.wal_records.add(entries.len() as u64);
                }
            }
            inner.total_accepted += entries.len() as u64;
            if let Some(metrics) = &self.metrics {
                metrics.accepted.add(entries.len() as u64);
            }
            inner.queue.extend(entries);
            if let Some(metrics) = &self.metrics {
                metrics.queue_depth.set(inner.queue.len() as i64);
            }
            (first_seq, last_seq, inner.queue.len())
        };
        let mut report = None;
        if self.config.epoch_batch.is_some_and(|batch| depth >= batch) {
            // The batch is already accepted (logged and queued): an
            // epoch failure here must not read as a rejected submit, or
            // clients would re-submit and double-apply. Wrap it so the
            // error itself carries the accepted range.
            match self.run_epoch() {
                Ok(r) => report = r,
                Err(source) => {
                    return Err(IngestError::EpochFailed {
                        accepted: (last_seq - first_seq + 1) as usize,
                        first_seq,
                        last_seq,
                        source: Box::new(source),
                    })
                }
            }
        }
        Ok(SubmitReceipt {
            accepted: (last_seq - first_seq + 1) as usize,
            first_seq,
            last_seq,
            queue_depth: self.queue_depth(),
            epoch: report,
        })
    }

    /// Drains the queue and publishes a new snapshot. Returns `None`
    /// when the queue was empty. Dirty users (those in the batch) are
    /// re-prepared, re-mined, and re-placed incrementally; if the batch
    /// moved the study window the full pipeline runs instead. Readers
    /// keep serving the previous snapshot throughout; the swap is
    /// atomic.
    ///
    /// # Errors
    ///
    /// Merge and pipeline errors; the drained batch is re-queued at the
    /// front, so no accepted record is lost. A WAL checkpoint failure
    /// after the swap is reported but leaves the published snapshot in
    /// place (replay deduplicates the stale segments).
    pub fn run_epoch(&self) -> Result<Option<EpochReport>, IngestError> {
        let _epoch = self.epoch_guard.lock();
        let start = Instant::now();
        let batch: Vec<WalEntry> = {
            let mut inner = self.inner.lock();
            let batch: Vec<WalEntry> = inner.queue.drain(..).collect();
            if let Some(metrics) = &self.metrics {
                metrics.queue_depth.set(0);
            }
            batch
        };
        if batch.is_empty() {
            return Ok(None);
        }
        let previous = self.cell.load();
        let result = self.build_next(&previous, &batch);
        let (snapshot, mode, delta) = match result {
            Ok(next) => next,
            Err(e) => {
                // Put the batch back, oldest first, ahead of anything
                // submitted while we were building.
                let mut inner = self.inner.lock();
                for entry in batch.into_iter().rev() {
                    inner.queue.push_front(entry);
                }
                if let Some(metrics) = &self.metrics {
                    metrics.queue_depth.set(inner.queue.len() as i64);
                }
                return Err(e);
            }
        };
        let report = EpochReport {
            epoch: snapshot.epoch(),
            applied: batch.len(),
            users_remined: delta.users_recomputed,
            mode,
            duration_micros: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
            delta,
        };
        let next = Arc::new(snapshot);
        // Record into the history before publishing, so any epoch a
        // reader can observe as latest is already materializable.
        self.history.record(
            next.epoch(),
            previous.crowd(),
            next.crowd_arc(),
            mode,
            batch.len(),
        );
        self.cell.store(next);
        if let Some(metrics) = &self.metrics {
            metrics.epoch_seconds.observe(start.elapsed().as_secs_f64());
            metrics.dirty_users.set(delta.users_recomputed as i64);
            metrics.count_epoch(mode);
        }
        let mut inner = self.inner.lock();
        inner.total_applied += batch.len() as u64;
        inner.epochs_run += 1;
        if mode == EpochMode::FullRebuild {
            inner.full_rebuilds += 1;
        }
        inner.last_epoch = Some(report);
        let last_seq = batch.last().expect("non-empty").seq;
        inner.applied.extend(batch);
        let applied = std::mem::take(&mut inner.applied);
        let result = match inner.wal.as_mut() {
            Some(wal) => wal.checkpoint(last_seq, &applied),
            None => Ok(()),
        };
        inner.applied = applied;
        result?;
        Ok(Some(report))
    }

    /// Builds the next snapshot from `previous` plus a drained batch.
    fn build_next(
        &self,
        previous: &PlatformSnapshot,
        batch: &[WalEntry],
    ) -> Result<(PlatformSnapshot, EpochMode, CrowdDelta), IngestError> {
        build_next_snapshot(&self.config, previous, batch, |prepared, prev, dirty| {
            self.config
                .miner()?
                .detect_updated(prepared, prev, dirty)
                .map_err(crowdweb_crowd::PipelineError::Mobility)
                .map_err(IngestError::from)
        })
    }

    /// The engine's bounded epoch history.
    pub fn history(&self) -> &CrowdHistory {
        &self.history
    }

    /// Materializes the crowd model as published at `epoch`, or `None`
    /// when the epoch has been evicted from (or never reached) the
    /// history ring.
    pub fn crowd_at(&self, epoch: u64) -> Option<Arc<CrowdModel>> {
        self.history.materialize(epoch)
    }

    /// One row per retained history epoch, oldest first.
    pub fn epochs(&self) -> Vec<EpochInfo> {
        self.history.epochs()
    }

    /// Point-in-time statistics for `GET /api/ingest/stats`.
    pub fn stats(&self) -> IngestStats {
        let inner = self.inner.lock();
        IngestStats {
            epoch: self.cell.epoch(),
            history_depth: self.history.depth(),
            history_capacity: self.history.capacity(),
            queue_depth: inner.queue.len(),
            queue_capacity: self.config.queue_capacity,
            total_accepted: inner.total_accepted,
            total_applied: inner.total_applied,
            durable: inner.wal.is_some(),
            wal_segment_bytes: inner.wal.as_ref().map_or(0, Wal::segment_bytes),
            wal_checkpoint_bytes: inner.wal.as_ref().map_or(0, Wal::checkpoint_bytes),
            epochs_run: inner.epochs_run,
            full_rebuilds: inner.full_rebuilds,
            last_epoch: inner.last_epoch,
        }
    }
}

/// Builds the epoch-`previous.epoch() + 1` snapshot from `previous`
/// plus a drained batch, shared by the unsharded and sharded engines.
///
/// `mine` supplies the incremental re-mining strategy — the unsharded
/// engine calls [`PatternMiner::detect_updated`] directly, the sharded
/// engine fans per-shard partitions of the dirty set out over
/// [`crowdweb_exec::parallel_map_with_index`]. Both must honour the
/// same contract: return one [`UserPatterns`] per prepared user, in
/// `prepared.seqdb().user_ids()` order, re-mining exactly the users
/// that are dirty or absent from `previous.patterns()`.
pub(crate) fn build_next_snapshot<F>(
    config: &IngestConfig,
    previous: &PlatformSnapshot,
    batch: &[WalEntry],
    mine: F,
) -> Result<(PlatformSnapshot, EpochMode, CrowdDelta), IngestError>
where
    F: FnOnce(
        &Prepared,
        &[UserPatterns],
        &BTreeSet<UserId>,
    ) -> Result<Vec<UserPatterns>, IngestError>,
{
    let records: Vec<MergeRecord> = batch.iter().map(|e| e.record.clone()).collect();
    let dirty: BTreeSet<UserId> = records.iter().map(|r| r.user).collect();
    let merged = previous.dataset().merge_records(&records)?;
    let epoch = previous.epoch() + 1;
    match config
        .preprocessor
        .update(previous.prepared(), &merged, &dirty)
        .map_err(crowdweb_crowd::PipelineError::Prep)?
    {
        PrepUpdate::Incremental(prepared) => {
            let patterns = mine(&prepared, previous.patterns(), &dirty)?;
            let (crowd, delta) = CrowdBuilder::new(&merged, &prepared)
                .windows(config.windows.clone())
                .parallelism(config.parallelism)
                .update(previous.crowd(), &patterns, &dirty)
                .map_err(crowdweb_crowd::PipelineError::Crowd)?;
            let snapshot = PlatformSnapshot::new(
                epoch,
                merged,
                *prepared,
                patterns,
                previous.grid().clone(),
                crowd,
                config.min_support,
            );
            Ok((snapshot, EpochMode::Incremental, delta))
        }
        PrepUpdate::FullRebuild => {
            let out = config.driver()?.run(&merged)?;
            let mut cells: BTreeSet<(usize, _)> = BTreeSet::new();
            for p in previous.crowd().placements() {
                cells.insert((p.window, p.cell));
            }
            for p in out.crowd.placements() {
                cells.insert((p.window, p.cell));
            }
            let delta = CrowdDelta {
                users_recomputed: out.prepared.user_count(),
                placements_removed: previous.crowd().placement_count(),
                placements_added: out.crowd.placement_count(),
                cells_touched: cells.len(),
            };
            let snapshot = PlatformSnapshot::new(
                epoch,
                merged,
                out.prepared,
                out.patterns,
                out.grid,
                out.crowd,
                config.min_support,
            );
            Ok((snapshot, EpochMode::FullRebuild, delta))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_dataset::Timestamp;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("crowdweb-engine-{tag}-{}-{n}", std::process::id()))
    }

    fn config() -> IngestConfig {
        let mut c = IngestConfig::default();
        c.preprocessor = c.preprocessor.min_active_days(20);
        c
    }

    fn base() -> Dataset {
        crowdweb_synth::SynthConfig::small(51).generate().unwrap()
    }

    /// Clones `n` existing check-ins shifted by `shift_secs` as records.
    fn shifted_records(d: &Dataset, shift_secs: i64, n: usize) -> Vec<MergeRecord> {
        d.checkins()
            .iter()
            .step_by(97) // spread across users
            .take(n)
            .map(|c| {
                let v = d.venue(c.venue()).unwrap();
                MergeRecord {
                    user: c.user(),
                    venue_key: v.name().to_owned(),
                    category: d.taxonomy().name_of(v.category()).unwrap().to_owned(),
                    location: v.location(),
                    tz_offset_minutes: c.tz_offset_minutes(),
                    time: Timestamp::from_unix_seconds(c.time().unix_seconds() + shift_secs),
                }
            })
            .collect()
    }

    #[test]
    fn backpressure_rejects_whole_batch() {
        let mut cfg = config();
        cfg.queue_capacity = 3;
        let engine = IngestEngine::open(base(), cfg).unwrap();
        let records = shifted_records(engine.snapshot().dataset(), 3600, 2);
        engine.submit(records.clone()).unwrap();
        let err = engine.submit(records).unwrap_err();
        assert!(matches!(
            err,
            IngestError::Backpressure {
                queued: 2,
                capacity: 3,
                rejected: 2
            }
        ));
        assert_eq!(engine.queue_depth(), 2, "rejected batch must not enqueue");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn empty_submit_and_empty_epoch_are_noops() {
        let engine = IngestEngine::open(base(), config()).unwrap();
        let receipt = engine.submit(Vec::new()).unwrap();
        assert_eq!(receipt.accepted, 0);
        assert!(engine.run_epoch().unwrap().is_none());
        assert_eq!(engine.epoch(), 0);
    }

    #[test]
    fn epoch_applies_batch_and_updates_stats() {
        let engine = IngestEngine::open(base(), config()).unwrap();
        let before = engine.snapshot();
        let records = shifted_records(before.dataset(), 3600, 5);
        let receipt = engine.submit(records).unwrap();
        assert_eq!(receipt.accepted, 5);
        assert_eq!((receipt.first_seq, receipt.last_seq), (1, 5));
        let report = engine.run_epoch().unwrap().expect("non-empty queue");
        assert_eq!(report.epoch, 1);
        assert_eq!(report.applied, 5);
        assert_eq!(report.mode, EpochMode::Incremental);
        let after = engine.snapshot();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.dataset().len(), before.dataset().len() + 5);
        // The pinned pre-epoch snapshot is untouched.
        assert_eq!(before.epoch(), 0);
        let stats = engine.stats();
        assert_eq!(stats.total_accepted, 5);
        assert_eq!(stats.total_applied, 5);
        assert_eq!(stats.epochs_run, 1);
        assert_eq!(stats.queue_depth, 0);
        assert!(!stats.durable);
        assert!(serde_json::to_string(&stats).is_ok());
    }

    #[test]
    fn auto_epoch_runs_at_threshold() {
        let mut cfg = config();
        cfg.epoch_batch = Some(3);
        let engine = IngestEngine::open(base(), cfg).unwrap();
        let records = shifted_records(engine.snapshot().dataset(), 3600, 4);
        let receipt = engine.submit(records).unwrap();
        let report = receipt.epoch.expect("threshold reached, epoch must run");
        assert_eq!(report.applied, 4);
        assert_eq!(engine.epoch(), 1);
        assert_eq!(receipt.queue_depth, 0);
    }

    #[test]
    fn wal_append_failure_rejects_batch_atomically() {
        let dir = temp_dir("walfail");
        let mut cfg = config();
        cfg.wal = Some(crate::WalConfig::new(&dir));
        let engine = IngestEngine::open(base(), cfg).unwrap();
        let records = shifted_records(engine.snapshot().dataset(), 3600, 2);
        // Sabotage the first append: no directory, no segment file.
        std::fs::remove_dir_all(&dir).unwrap();
        let err = engine.submit(records.clone()).unwrap_err();
        assert!(matches!(err, IngestError::Wal(_)), "{err:?}");
        assert_eq!(engine.queue_depth(), 0, "failed batch must not enqueue");
        // The sequence numbers were released: a retry reuses the range
        // safely because nothing of the failed batch survived.
        std::fs::create_dir_all(&dir).unwrap();
        let receipt = engine.submit(records).unwrap();
        assert_eq!((receipt.first_seq, receipt.last_seq), (1, 2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inline_epoch_failure_reports_accepted_range() {
        let dir = temp_dir("epochfail");
        let mut cfg = config();
        cfg.wal = Some(crate::WalConfig::new(&dir));
        cfg.epoch_batch = Some(2);
        let engine = IngestEngine::open(base(), cfg).unwrap();
        let records = shifted_records(engine.snapshot().dataset(), 3600, 2);
        engine.submit(records[..1].to_vec()).unwrap();
        // Sabotage the post-publish checkpoint: the directory is gone,
        // but appends still reach the already-open segment file.
        std::fs::remove_dir_all(&dir).unwrap();
        let err = engine.submit(records[1..].to_vec()).unwrap_err();
        match err {
            IngestError::EpochFailed {
                accepted,
                first_seq,
                last_seq,
                ..
            } => assert_eq!((accepted, first_seq, last_seq), (1, 2, 2)),
            other => panic!("expected EpochFailed, got {other:?}"),
        }
        // The failure was past the publish: the snapshot moved and the
        // queue is empty, so re-submitting the batch would double-apply
        // — exactly what the error's contract warns clients against.
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.queue_depth(), 0);
    }

    #[test]
    fn metrics_track_submits_epochs_and_wal() {
        let dir = temp_dir("metrics");
        let registry = MetricsRegistry::new();
        let mut cfg = config();
        cfg.wal = Some(crate::WalConfig::new(&dir));
        cfg.metrics = Some(registry.clone());
        let engine = IngestEngine::open(base(), cfg).unwrap();
        let records = shifted_records(engine.snapshot().dataset(), 3600, 5);
        engine.submit(records).unwrap();
        assert_eq!(
            registry.counter_value("crowdweb_ingest_accepted_total", &[]),
            Some(5)
        );
        assert_eq!(
            registry.counter_value("crowdweb_ingest_wal_appended_records_total", &[]),
            Some(5)
        );
        let wal_bytes = registry
            .counter_value("crowdweb_ingest_wal_appended_bytes_total", &[])
            .unwrap();
        assert!(wal_bytes > 0, "WAL append must record bytes");
        assert_eq!(
            registry.gauge_value("crowdweb_ingest_queue_depth", &[]),
            Some(5)
        );
        engine.run_epoch().unwrap().unwrap();
        assert_eq!(
            registry.gauge_value("crowdweb_ingest_queue_depth", &[]),
            Some(0)
        );
        assert_eq!(
            registry.counter_value("crowdweb_ingest_epochs_total", &[("mode", "incremental")]),
            Some(1)
        );
        let (count, sum) = registry
            .histogram_stats("crowdweb_ingest_epoch_seconds", &[])
            .unwrap();
        assert_eq!(count, 1);
        assert!(sum >= 0.0);
        let dirty = registry
            .gauge_value("crowdweb_ingest_epoch_dirty_users", &[])
            .unwrap();
        assert!(dirty > 0, "epoch must recompute the touched users");
        // The pipeline stages recorded through the same registry.
        assert!(registry
            .histogram_stats(
                crowdweb_obs::STAGE_SECONDS,
                &[("stage", "prepare"), ("policy", "auto")]
            )
            .is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_replay_reaches_same_snapshot() {
        let dir = temp_dir("replay");
        let mut cfg = config();
        cfg.wal = Some(crate::WalConfig::new(&dir));
        let records;
        let crowd_json;
        {
            let engine = IngestEngine::open(base(), cfg.clone()).unwrap();
            records = shifted_records(engine.snapshot().dataset(), 3600, 6);
            engine.submit(records.clone()).unwrap();
            engine.run_epoch().unwrap().unwrap();
            crowd_json = serde_json::to_string(engine.snapshot().crowd()).unwrap();
            assert!(engine.stats().durable);
        } // crash
        let engine = IngestEngine::open(base(), cfg).unwrap();
        // Everything replayed into the epoch-0 cold build.
        assert_eq!(engine.epoch(), 0);
        assert_eq!(
            serde_json::to_string(engine.snapshot().crowd()).unwrap(),
            crowd_json,
            "replayed snapshot diverged from pre-crash snapshot"
        );
        // Sequence numbers continue after the replayed tail.
        let receipt = engine.submit(records).unwrap();
        assert_eq!(receipt.first_seq, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
