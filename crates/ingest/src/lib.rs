//! Live check-in ingestion for the CrowdWeb platform.
//!
//! The paper's demo flow — "if any audience member is willing to share
//! their check-in history, we can upload it to the platform" — implies
//! a serving system that absorbs new data while answering queries. This
//! crate turns the batch pipeline into that system:
//!
//! 1. **Bounded queue** — [`IngestEngine::submit`] accepts
//!    [`MergeRecord`] batches into a bounded queue; a full queue
//!    rejects the batch with [`IngestError::Backpressure`] instead of
//!    growing without limit.
//! 2. **Write-ahead log** ([`wal`]) — accepted records are framed
//!    (`len + crc32 + JSON`) into segment files *before* they are
//!    queued, replayed on startup, and compacted after each snapshot
//!    (truncate-after-checkpoint). A torn final record is truncated
//!    away on replay.
//! 3. **Epoch snapshots** ([`engine`]) — [`IngestEngine::run_epoch`]
//!    drains the queue, merges the batch into the dataset, re-runs the
//!    pipeline *incrementally* (only users whose sequences changed are
//!    re-prepared, re-mined, and re-placed; the crowd model is spliced
//!    per user), and atomically publishes an immutable
//!    [`Arc<PlatformSnapshot>`](PlatformSnapshot) via
//!    [`crowdweb_exec::EpochCell`] — readers never block behind
//!    ingestion and never observe a half-updated pipeline.
//! 4. **Observability** ([`stats`]) — [`IngestEngine::stats`] reports
//!    queue depth, WAL bytes, epoch latency, and re-mine counts.
//! 5. **Sharding** ([`shard`]) — [`ShardedIngestEngine`] partitions
//!    the queue, the WAL, and the per-epoch dirty set across
//!    `hash(user) % N` shards so epoch re-mining fans out per shard,
//!    while a global sequence counter keeps snapshots byte-identical
//!    to the unsharded engine for any shard count.
//! 6. **Epoch history** ([`history`]) — each published epoch is also
//!    recorded in a bounded [`CrowdHistory`] ring as either a shared
//!    full checkpoint or a [`CrowdSplice`](crowdweb_crowd::CrowdSplice)
//!    delta, so any retained epoch's crowd model can be rematerialized
//!    on demand (the server's `?epoch=N` time-travel parameter).
//!
//! Determinism contract: after any sequence of submits and epochs, the
//! published snapshot's pipeline stages are byte-identical to a cold
//! build over the merged dataset with the same configuration — under
//! any [`Parallelism`](crowdweb_exec::Parallelism) policy. Crash
//! recovery (WAL replay, including a torn tail) reaches the same
//! snapshot minus any records that never finished hitting disk.
//!
//! # Examples
//!
//! ```
//! use crowdweb_ingest::{IngestConfig, IngestEngine};
//! use crowdweb_dataset::MergeRecord;
//! use crowdweb_synth::SynthConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let base = SynthConfig::small(51).generate()?;
//! let mut config = IngestConfig::default();
//! config.preprocessor = config.preprocessor.min_active_days(20);
//! let engine = IngestEngine::open(base, config)?;
//! let before = engine.snapshot();
//!
//! // Re-submit an existing check-in shifted by an hour.
//! let c = before.dataset().checkins()[0];
//! let venue = before.dataset().venue(c.venue()).unwrap();
//! let record = MergeRecord {
//!     user: c.user(),
//!     venue_key: venue.name().to_owned(),
//!     category: "Office".to_owned(),
//!     location: venue.location(),
//!     tz_offset_minutes: c.tz_offset_minutes(),
//!     time: crowdweb_dataset::Timestamp::from_unix_seconds(c.time().unix_seconds() + 3600),
//! };
//! let receipt = engine.submit(vec![record])?;
//! assert_eq!(receipt.accepted, 1);
//! let report = engine.run_epoch()?.expect("queue was non-empty");
//! assert_eq!(report.epoch, 1);
//! assert_eq!(engine.snapshot().dataset().len(), before.dataset().len() + 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod history;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod wal;

pub use engine::{IngestConfig, IngestEngine};
pub use error::IngestError;
pub use history::{CrowdHistory, EpochInfo, EpochRecord, EpochRepr};
pub use shard::{effective_shards, shard_of, ShardedIngestEngine, MAX_SHARDS};
pub use snapshot::PlatformSnapshot;
pub use stats::{
    EpochMode, EpochReport, IngestStats, ShardStats, ShardedIngestStats, SubmitReceipt,
};
pub use wal::{Wal, WalConfig, WalEntry, WalRecovery};
