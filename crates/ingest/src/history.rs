//! The bounded, delta-compressed epoch history store.
//!
//! Each published epoch used to exist only until the next one replaced
//! it in the engine's [`EpochCell`](crowdweb_exec::EpochCell). The
//! history store retains the last `history_depth` epochs of the *crowd
//! model* — the stage every temporal endpoint reads — without cloning
//! full placements per epoch:
//!
//! - **checkpoints** ([`EpochRepr::Full`]) share the published
//!   snapshot's `Arc<CrowdModel>` (no copy at all), and are taken at
//!   epoch 0, on every full pipeline rebuild, and every
//!   `checkpoint_every` epochs so reconstruction cost stays bounded;
//! - every other epoch stores a [`CrowdSplice`]
//!   ([`EpochRepr::Delta`]) — just the per-user placement runs that
//!   changed.
//!
//! [`CrowdHistory::materialize`] rebuilds any retained epoch by walking
//! back to the nearest checkpoint and replaying the delta chain
//! forward; the splice algebra is exact, so the result is
//! byte-identical to the model that was published at that epoch (the
//! determinism suites assert this against cold rebuilds). Eviction
//! keeps the invariant that the **oldest retained epoch is always a
//! checkpoint**: when a checkpoint falls off the ring and the next
//! entry is a delta, the delta is folded into the evicted model and
//! promoted — atomically, inside the ring lock, via
//! [`EpochStore::store_with`].

use crowdweb_crowd::{CrowdModel, CrowdSplice};
use crowdweb_exec::EpochStore;
use crowdweb_obs::{
    Gauge, Histogram, MetricsRegistry, EPOCH_LATENCY_BUCKETS, HISTORY_RECONSTRUCTION_SECONDS,
    HISTORY_RESIDENT_BYTES, HISTORY_RETAINED_EPOCHS,
};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

use crate::EpochMode;

/// How one retained epoch is represented in the ring.
#[derive(Debug, Clone)]
pub enum EpochRepr {
    /// A full crowd model — a checkpoint the delta chain anchors on.
    /// Shares the published snapshot's `Arc`, so it costs no copy.
    Full(Arc<CrowdModel>),
    /// The splice turning the previous epoch's model into this one.
    Delta(Arc<CrowdSplice>),
}

/// One retained epoch: identity, provenance, and representation.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// The epoch id (equals the engine's published epoch counter).
    pub epoch: u64,
    /// Wall-clock publication time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Records applied by the epoch (0 for the cold build).
    pub records: usize,
    /// Full checkpoint or delta splice.
    pub repr: EpochRepr,
}

impl EpochRecord {
    /// Approximate resident heap bytes of this entry's representation.
    pub fn resident_bytes(&self) -> usize {
        match &self.repr {
            EpochRepr::Full(model) => {
                model.placement_count() * std::mem::size_of::<crowdweb_crowd::Placement>()
            }
            EpochRepr::Delta(splice) => splice.resident_bytes(),
        }
    }

    /// Whether the entry is a full checkpoint.
    pub fn is_full(&self) -> bool {
        matches!(self.repr, EpochRepr::Full(_))
    }
}

/// One row of `GET /api/v1/epochs`: everything a client needs to decide
/// which epochs are scrubbable and what holding them costs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct EpochInfo {
    /// The epoch id, usable as `?epoch=N`.
    pub epoch: u64,
    /// Publication time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Records applied by the epoch.
    pub records: usize,
    /// `"full"` for checkpoints, `"delta"` for splices.
    pub kind: &'static str,
    /// Approximate resident bytes of the retained representation.
    pub resident_bytes: usize,
}

/// Pre-registered history metric handles (see crowdweb-obs name
/// consts); updates never touch the registry's family table.
#[derive(Debug)]
struct HistoryMetrics {
    retained: Gauge,
    full_bytes: Gauge,
    delta_bytes: Gauge,
    reconstruction_seconds: Histogram,
}

impl HistoryMetrics {
    fn new(registry: &MetricsRegistry) -> HistoryMetrics {
        HistoryMetrics {
            retained: registry.gauge(
                HISTORY_RETAINED_EPOCHS,
                "Epochs currently retained by the history store.",
                &[],
            ),
            full_bytes: registry.gauge(
                HISTORY_RESIDENT_BYTES,
                "Approximate resident bytes of the epoch history, by representation.",
                &[("kind", "full")],
            ),
            delta_bytes: registry.gauge(
                HISTORY_RESIDENT_BYTES,
                "Approximate resident bytes of the epoch history, by representation.",
                &[("kind", "delta")],
            ),
            reconstruction_seconds: registry.histogram(
                HISTORY_RECONSTRUCTION_SECONDS,
                "Wall-clock seconds to materialize a historical epoch from checkpoint + deltas.",
                &[],
                &EPOCH_LATENCY_BUCKETS,
            ),
        }
    }
}

/// The engine-side epoch history (see the [module docs](self)).
///
/// Thread-safe: the single epoch writer records through
/// [`Self::record`] (serialized by the engine's epoch guard) while any
/// number of readers list and materialize concurrently.
#[derive(Debug)]
pub struct CrowdHistory {
    store: EpochStore<EpochRecord>,
    checkpoint_every: u64,
    metrics: Option<HistoryMetrics>,
}

impl CrowdHistory {
    /// Creates a history seeded with the epoch-0 cold build (always a
    /// checkpoint), retaining up to `depth` epochs and forcing a full
    /// checkpoint every `checkpoint_every` epochs (clamped to ≥ 1).
    pub fn new(
        initial: Arc<CrowdModel>,
        depth: usize,
        checkpoint_every: u64,
        metrics: Option<&MetricsRegistry>,
    ) -> CrowdHistory {
        let seed = EpochRecord {
            epoch: 0,
            unix_ms: now_unix_ms(),
            records: 0,
            repr: EpochRepr::Full(initial),
        };
        let history = CrowdHistory {
            store: EpochStore::new(Arc::new(seed), depth),
            checkpoint_every: checkpoint_every.max(1),
            metrics: metrics.map(HistoryMetrics::new),
        };
        history.publish_gauges();
        history
    }

    /// Records a freshly built epoch. Must be called with the epochs in
    /// order (the engines' epoch guard serializes this) and *before*
    /// the snapshot is published, so every epoch a client can observe
    /// as latest is already materializable from the history.
    pub fn record(
        &self,
        epoch: u64,
        previous: &CrowdModel,
        next: Arc<CrowdModel>,
        mode: EpochMode,
        records: usize,
    ) {
        // Full rebuilds may replace the grid or window set, which a
        // splice cannot express; periodic checkpoints bound the delta
        // chain a materialization has to replay.
        let repr = if mode == EpochMode::FullRebuild || epoch.is_multiple_of(self.checkpoint_every)
        {
            EpochRepr::Full(next)
        } else {
            EpochRepr::Delta(Arc::new(CrowdSplice::between(previous, &next)))
        };
        let record = EpochRecord {
            epoch,
            unix_ms: now_unix_ms(),
            records,
            repr,
        };
        let stored = self.store.store_with(Arc::new(record), promote_front);
        debug_assert_eq!(stored, epoch, "history epochs must track engine epochs");
        self.publish_gauges();
    }

    /// The retention capacity (`IngestConfig::history_depth`).
    pub fn capacity(&self) -> usize {
        self.store.capacity()
    }

    /// How many epochs are currently retained.
    pub fn depth(&self) -> usize {
        self.store.len()
    }

    /// The inclusive `(oldest, newest)` retained epoch ids.
    pub fn retained(&self) -> (u64, u64) {
        self.store.retained()
    }

    /// One [`EpochInfo`] row per retained epoch, oldest first.
    pub fn epochs(&self) -> Vec<EpochInfo> {
        self.store
            .entries()
            .iter()
            .map(|(_, record)| EpochInfo {
                epoch: record.epoch,
                unix_ms: record.unix_ms,
                records: record.records,
                kind: if record.is_full() { "full" } else { "delta" },
                resident_bytes: record.resident_bytes(),
            })
            .collect()
    }

    /// Materializes the crowd model as it was published at `epoch`, or
    /// `None` if the epoch is no longer (or not yet) retained.
    ///
    /// Checkpoint hits return the shared `Arc` directly; delta hits
    /// clone the nearest earlier checkpoint and replay the splice chain
    /// forward. The chain is collected under one ring lock (consistent
    /// prefix) but replayed outside it, so a slow reconstruction never
    /// blocks the epoch writer.
    pub fn materialize(&self, epoch: u64) -> Option<Arc<CrowdModel>> {
        let start = Instant::now();
        let chain = self.store.up_to(epoch)?;
        let anchor = chain.iter().rposition(|(_, r)| r.is_full())?;
        let EpochRepr::Full(base) = &chain[anchor].1.repr else {
            unreachable!("rposition(is_full) found a checkpoint");
        };
        let mut current = Arc::clone(base);
        for (_, record) in &chain[anchor + 1..] {
            let EpochRepr::Delta(splice) = &record.repr else {
                unreachable!("entries after the last checkpoint are deltas");
            };
            current = Arc::new(splice.apply(&current));
        }
        if let Some(metrics) = &self.metrics {
            metrics
                .reconstruction_seconds
                .observe(start.elapsed().as_secs_f64());
        }
        Some(current)
    }

    /// Re-publishes the retained-epochs and resident-bytes gauges from
    /// the current ring contents.
    fn publish_gauges(&self) {
        let Some(metrics) = &self.metrics else {
            return;
        };
        let entries = self.store.entries();
        let (mut full, mut delta) = (0usize, 0usize);
        for (_, record) in &entries {
            if record.is_full() {
                full += record.resident_bytes();
            } else {
                delta += record.resident_bytes();
            }
        }
        metrics.retained.set(entries.len() as i64);
        metrics.full_bytes.set(full as i64);
        metrics.delta_bytes.set(delta as i64);
    }
}

/// The eviction fold: when the evicted oldest entry leaves a delta at
/// the front of the ring, fold the delta into the evicted checkpoint so
/// the oldest retained epoch is always a checkpoint. `evicted` is a
/// checkpoint by induction (epoch 0 is, and this fold re-establishes
/// the invariant on every eviction).
fn promote_front(evicted: &EpochRecord, front: &EpochRecord) -> Option<EpochRecord> {
    let EpochRepr::Delta(splice) = &front.repr else {
        return None;
    };
    let EpochRepr::Full(base) = &evicted.repr else {
        unreachable!("the oldest retained epoch is always a checkpoint");
    };
    Some(EpochRecord {
        epoch: front.epoch,
        unix_ms: front.unix_ms,
        records: front.records,
        repr: EpochRepr::Full(Arc::new(splice.apply(base))),
    })
}

/// Wall-clock milliseconds since the Unix epoch (0 if the clock is
/// before it, which only a badly skewed host would report).
fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_crowd::{Placement, TimeWindows};
    use crowdweb_dataset::{UserId, VenueId};
    use crowdweb_geo::{BoundingBox, CellId, MicrocellGrid};
    use crowdweb_prep::PlaceLabel;

    fn placement(user: u32, window: usize, cell: u64) -> Placement {
        Placement {
            user: UserId::new(user),
            window,
            label: PlaceLabel(0),
            support: 1,
            venue: VenueId::new(0),
            cell: CellId(cell),
        }
    }

    fn model(placements: Vec<Placement>) -> Arc<CrowdModel> {
        Arc::new(CrowdModel::new(
            MicrocellGrid::new(BoundingBox::NYC, 4, 4).unwrap(),
            TimeWindows::hourly(),
            placements,
        ))
    }

    /// A toy epoch sequence: user 1 wanders one cell per epoch.
    fn epoch_model(n: u64) -> Arc<CrowdModel> {
        model(vec![placement(1, 9, n % 16), placement(2, 9, 3)])
    }

    fn run_history(depth: usize, checkpoint_every: u64, epochs: u64) -> CrowdHistory {
        let history = CrowdHistory::new(epoch_model(0), depth, checkpoint_every, None);
        for n in 1..=epochs {
            history.record(
                n,
                &epoch_model(n - 1),
                epoch_model(n),
                EpochMode::Incremental,
                1,
            );
        }
        history
    }

    #[test]
    fn every_retained_epoch_materializes_exactly() {
        let history = run_history(8, 3, 20);
        assert_eq!(history.depth(), 8);
        assert_eq!(history.retained(), (13, 20));
        for n in 13..=20u64 {
            let got = history.materialize(n).expect("retained epoch");
            assert_eq!(
                *got,
                *epoch_model(n),
                "epoch {n} must reconstruct byte-identically"
            );
        }
        assert!(history.materialize(12).is_none());
        assert!(history.materialize(21).is_none());
    }

    #[test]
    fn oldest_retained_entry_is_always_a_checkpoint() {
        // checkpoint_every = 5 with depth 4 forces evictions that land
        // deltas at the front; the fold must promote them.
        let history = run_history(4, 5, 23);
        let listing = history.epochs();
        assert_eq!(listing.len(), 4);
        assert_eq!(listing[0].kind, "full", "front must be a checkpoint");
        for n in 20..=23u64 {
            assert!(history.materialize(n).is_some(), "epoch {n}");
        }
    }

    #[test]
    fn full_rebuild_epochs_are_checkpoints() {
        let history = CrowdHistory::new(epoch_model(0), 8, 100, None);
        history.record(
            1,
            &epoch_model(0),
            epoch_model(1),
            EpochMode::Incremental,
            1,
        );
        history.record(
            2,
            &epoch_model(1),
            epoch_model(2),
            EpochMode::FullRebuild,
            1,
        );
        let listing = history.epochs();
        assert_eq!(
            listing.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec!["full", "delta", "full"]
        );
        assert_eq!(*history.materialize(1).unwrap(), *epoch_model(1));
    }

    #[test]
    fn listing_reports_identity_and_cost() {
        let history = run_history(16, 8, 5);
        let listing = history.epochs();
        assert_eq!(listing.len(), 6);
        assert_eq!(listing[0].epoch, 0);
        assert_eq!(listing[0].records, 0);
        assert_eq!(listing[5].epoch, 5);
        assert_eq!(listing[5].records, 1);
        let full = listing.iter().find(|e| e.kind == "full").unwrap();
        let delta = listing.iter().find(|e| e.kind == "delta").unwrap();
        assert!(full.resident_bytes > 0);
        assert!(delta.resident_bytes > 0);
        assert!(serde_json::to_string(&listing).is_ok());
    }

    #[test]
    fn metrics_publish_retention_and_reconstruction() {
        let registry = MetricsRegistry::new();
        let history = CrowdHistory::new(epoch_model(0), 8, 4, Some(&registry));
        for n in 1..=6u64 {
            history.record(
                n,
                &epoch_model(n - 1),
                epoch_model(n),
                EpochMode::Incremental,
                1,
            );
        }
        assert_eq!(registry.gauge_value(HISTORY_RETAINED_EPOCHS, &[]), Some(7));
        let full = registry
            .gauge_value(HISTORY_RESIDENT_BYTES, &[("kind", "full")])
            .unwrap();
        let delta = registry
            .gauge_value(HISTORY_RESIDENT_BYTES, &[("kind", "delta")])
            .unwrap();
        assert!(full > 0, "checkpoints resident");
        assert!(delta > 0, "deltas resident");
        history.materialize(3).unwrap();
        let (count, _) = registry
            .histogram_stats(HISTORY_RECONSTRUCTION_SECONDS, &[])
            .unwrap();
        assert_eq!(count, 1, "reconstruction must be observed");
    }
}
