//! The immutable platform snapshot published to readers.

use crowdweb_crowd::CrowdModel;
use crowdweb_dataset::{Dataset, UserId};
use crowdweb_geo::MicrocellGrid;
use crowdweb_mobility::{PlaceGraph, UserPatterns};
use crowdweb_prep::{Labeler, Prepared};
use std::sync::Arc;

/// One epoch's complete, immutable pipeline output: the dataset plus
/// every derived stage. Readers clone an `Arc<PlatformSnapshot>` from
/// the engine and can serve any number of queries from a consistent
/// view while later epochs are published underneath them.
#[derive(Debug, Clone)]
pub struct PlatformSnapshot {
    epoch: u64,
    dataset: Dataset,
    prepared: Prepared,
    patterns: Vec<UserPatterns>,
    grid: MicrocellGrid,
    /// Shared with the engine's epoch history store, so retaining a
    /// full-model checkpoint never clones the placements.
    crowd: Arc<CrowdModel>,
    min_support: f64,
}

impl PlatformSnapshot {
    /// Assembles a snapshot (used by the engine).
    pub fn new(
        epoch: u64,
        dataset: Dataset,
        prepared: Prepared,
        patterns: Vec<UserPatterns>,
        grid: MicrocellGrid,
        crowd: CrowdModel,
        min_support: f64,
    ) -> PlatformSnapshot {
        PlatformSnapshot {
            epoch,
            dataset,
            prepared,
            patterns,
            grid,
            crowd: Arc::new(crowd),
            min_support,
        }
    }

    /// The epoch this snapshot was published at (0 = the cold build).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying (merged) dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The preprocessed pipeline output.
    pub fn prepared(&self) -> &Prepared {
        &self.prepared
    }

    /// All users' mined patterns, in user order.
    pub fn patterns(&self) -> &[UserPatterns] {
        &self.patterns
    }

    /// One user's patterns, if the user passed the filter.
    pub fn patterns_of(&self, user: UserId) -> Option<&UserPatterns> {
        self.patterns.iter().find(|p| p.user == user)
    }

    /// One user's place graph built from their daily sequences.
    pub fn place_graph_of(&self, user: UserId) -> Option<PlaceGraph> {
        self.prepared
            .seqdb()
            .view_of(user)
            .map(|view| PlaceGraph::from_sequences(user, &view.decode()))
    }

    /// The display microcell grid.
    pub fn grid(&self) -> &MicrocellGrid {
        &self.grid
    }

    /// The synchronized crowd model.
    pub fn crowd(&self) -> &CrowdModel {
        &self.crowd
    }

    /// The crowd model behind its shared `Arc` — what the epoch
    /// history retains for full-snapshot checkpoints.
    pub fn crowd_arc(&self) -> Arc<CrowdModel> {
        Arc::clone(&self.crowd)
    }

    /// The mining support threshold the snapshot was built with.
    pub fn min_support(&self) -> f64 {
        self.min_support
    }

    /// A labeler for rendering label names against this snapshot.
    pub fn labeler(&self) -> Labeler<'_> {
        Labeler::new(&self.dataset, self.prepared.scheme())
    }
}
