//! User-id-range sharded ingest engine.
//!
//! [`ShardedIngestEngine`] splits the live path into `N` shards, each
//! owning a bounded queue slice, its own WAL directory
//! (`<wal dir>/shard-<k>/`), and an independent dirty-user set.
//! Records route to shards by a **stable** hash of the user id
//! ([`shard_of`]); the hash is an on-disk compatibility contract — it
//! must not change across releases, or restart recovery would reroute
//! entries away from the checkpoints that cover them.
//!
//! Determinism is preserved by keeping ordering decisions global while
//! distributing only the work:
//!
//! - sequence numbers are assigned from one global counter at submit,
//!   so the union of all shard queues always reconstructs the exact
//!   submit order (venue interning in `merge_records` is
//!   order-sensitive);
//! - epochs drain every shard and merge/re-prepare over the seq-sorted
//!   union, then fan the expensive re-mining out **per shard** on
//!   [`parallel_map_with_index`], splicing results back in prepared
//!   user order — byte-identical to the unsharded engine's
//!   `detect_updated` for any shard count and any
//!   [`Parallelism`](crowdweb_exec::Parallelism) policy.
//!
//! Crash recovery opens every `shard-*` directory (plus any legacy
//! unsharded log in the WAL root), unions the surviving entries by
//! sequence number, cold-builds epoch 0, and rewrites one checkpoint
//! per shard whose header is that shard's **watermark** (the highest
//! sequence applied from it). A torn tail in one shard truncates only
//! that shard's un-checkpointed suffix; the other shards' records —
//! including ones with higher sequence numbers — survive replay.

use crate::engine::{build_next_snapshot, IngestConfig, IngestMetrics};
use crate::{
    CrowdHistory, EpochInfo, EpochMode, EpochReport, IngestError, PlatformSnapshot, ShardStats,
    ShardedIngestStats, SubmitReceipt, Wal, WalConfig, WalEntry,
};
use crowdweb_crowd::CrowdModel;
use crowdweb_dataset::{Dataset, MergeRecord, UserId};
use crowdweb_exec::{parallel_map_with_index, EpochCell};
use crowdweb_mobility::UserPatterns;
use crowdweb_obs::{Gauge, Histogram, EPOCH_LATENCY_BUCKETS, SHARD_FANOUT_SECONDS};
use crowdweb_prep::{Prepared, UserView};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Hard cap on the shard count, so the per-shard metric label stays
/// bounded no matter what a builder passes in.
pub const MAX_SHARDS: usize = 64;

/// Routes a user to a shard: FNV-1a over the raw id, modulo `shards`.
///
/// Stability matters more than quality here: the same user must land on
/// the same shard across every release and restart, because each
/// shard's WAL checkpoint only covers the entries routed to it. The
/// hash is part of the on-disk format; never change it.
pub fn shard_of(user: UserId, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in user.raw().to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

/// Resolves a configured shard count: `0` means "available
/// parallelism", and everything is clamped to `1..=`[`MAX_SHARDS`].
pub fn effective_shards(configured: usize) -> usize {
    let n = if configured == 0 {
        crowdweb_exec::Parallelism::Auto.worker_count()
    } else {
        configured
    };
    n.clamp(1, MAX_SHARDS)
}

/// Pre-registered per-shard metric handles (bounded `shard` label).
#[derive(Debug)]
struct ShardMetrics {
    base: IngestMetrics,
    queue_depth: Vec<Gauge>,
    dirty_users: Vec<Gauge>,
    fanout_seconds: Vec<Histogram>,
}

impl ShardMetrics {
    fn new(base: IngestMetrics, shards: usize) -> ShardMetrics {
        let mut queue_depth = Vec::with_capacity(shards);
        let mut dirty_users = Vec::with_capacity(shards);
        let mut fanout_seconds = Vec::with_capacity(shards);
        for k in 0..shards {
            let label = k.to_string();
            queue_depth.push(base.registry.gauge(
                "crowdweb_ingest_shard_queue_depth",
                "Records queued on this shard for the next epoch.",
                &[("shard", &label)],
            ));
            dirty_users.push(base.registry.gauge(
                "crowdweb_ingest_shard_dirty_users",
                "Users this shard re-mined in the most recent epoch.",
                &[("shard", &label)],
            ));
            fanout_seconds.push(base.registry.histogram(
                SHARD_FANOUT_SECONDS,
                "Wall-clock seconds of this shard's re-mine slice per epoch.",
                &[("shard", &label)],
                &EPOCH_LATENCY_BUCKETS,
            ));
        }
        ShardMetrics {
            base,
            queue_depth,
            dirty_users,
            fanout_seconds,
        }
    }
}

/// One shard's mutable state. Ordering still lives globally (a single
/// sequence counter under the engine-wide lock); the shard owns the
/// durability and the dirty set for its user range.
#[derive(Debug)]
struct ShardState {
    queue: VecDeque<WalEntry>,
    wal: Option<Wal>,
    /// Entries applied to the published snapshot from this shard,
    /// ascending by seq; rewritten into the shard's checkpoint.
    applied: Vec<WalEntry>,
    /// Highest sequence number applied from this shard (0 if none) —
    /// persisted as the shard checkpoint's header.
    watermark: u64,
    accepted: u64,
    applied_total: u64,
}

#[derive(Debug)]
struct ShardedInner {
    shards: Vec<ShardState>,
    next_seq: u64,
    total_accepted: u64,
    total_applied: u64,
    epochs_run: u64,
    full_rebuilds: u64,
    last_epoch: Option<EpochReport>,
}

/// The sharded live-ingestion engine (see the [module docs](self)).
///
/// Drop-in compatible with [`IngestEngine`](crate::IngestEngine) for
/// the submit → epoch → snapshot flow, with byte-identical snapshots
/// for any shard count.
#[derive(Debug)]
pub struct ShardedIngestEngine {
    config: IngestConfig,
    shard_count: usize,
    per_shard_capacity: usize,
    cell: EpochCell<PlatformSnapshot>,
    inner: Mutex<ShardedInner>,
    /// Serializes epochs without blocking submitters or readers.
    epoch_guard: Mutex<()>,
    history: CrowdHistory,
    metrics: Option<ShardMetrics>,
}

impl ShardedIngestEngine {
    /// Opens the engine over a base dataset with
    /// [`IngestConfig::shards`] shards: replays every shard WAL (and
    /// any legacy unsharded log in the WAL root), unions the surviving
    /// entries by sequence number, cold-builds the epoch-0 snapshot,
    /// and rewrites one checkpoint per shard at its watermark. Shard
    /// directories beyond the current count (left by a larger previous
    /// configuration) are folded into the current shards and removed.
    ///
    /// # Errors
    ///
    /// WAL I/O or corruption errors, merge failures, and pipeline
    /// failures from the cold build.
    pub fn open(base: Dataset, config: IngestConfig) -> Result<ShardedIngestEngine, IngestError> {
        let shard_count = effective_shards(config.shards);
        let per_shard_capacity = config.queue_capacity.div_ceil(shard_count).max(1);

        let mut wals: Vec<Option<Wal>> = Vec::with_capacity(shard_count);
        let mut entries: Vec<WalEntry> = Vec::new();
        let mut last_seq = 0u64;
        let mut stale_dirs: Vec<PathBuf> = Vec::new();
        let mut legacy_files: Vec<PathBuf> = Vec::new();
        if let Some(wal_config) = &config.wal {
            for k in 0..shard_count {
                let (wal, recovery) = Wal::open(&shard_wal_config(wal_config, k))?;
                last_seq = last_seq.max(recovery.last_seq);
                entries.extend(recovery.entries);
                wals.push(Some(wal));
            }
            // Shard directories beyond the current count, and any
            // unsharded log left in the root by the plain engine, are
            // recovered and folded into the current shards' checkpoints
            // below, then deleted.
            for dir in stale_shard_dirs(&wal_config.dir, shard_count)? {
                let (_, recovery) = Wal::open(&WalConfig {
                    dir: dir.clone(),
                    segment_bytes: wal_config.segment_bytes,
                })?;
                last_seq = last_seq.max(recovery.last_seq);
                entries.extend(recovery.entries);
                stale_dirs.push(dir);
            }
            let (_, recovery) = Wal::open(wal_config)?;
            last_seq = last_seq.max(recovery.last_seq);
            entries.extend(recovery.entries);
            legacy_files = legacy_log_files(&wal_config.dir)?;
        } else {
            for _ in 0..shard_count {
                wals.push(None);
            }
        }
        entries.sort_by_key(|e| e.seq);
        entries.dedup_by_key(|e| e.seq);

        let records: Vec<MergeRecord> = entries.iter().map(|e| e.record.clone()).collect();
        let merged = base.merge_records(&records)?;
        let out = config.driver()?.run(&merged)?;
        let snapshot = PlatformSnapshot::new(
            0,
            merged,
            out.prepared,
            out.patterns,
            out.grid,
            out.crowd,
            config.min_support,
        );

        // Route every surviving entry to its shard under the *current*
        // count and persist one checkpoint per shard, so recovery state
        // is rebalanced before the stale sources are deleted.
        let mut shards: Vec<ShardState> = wals
            .into_iter()
            .map(|wal| ShardState {
                queue: VecDeque::new(),
                wal,
                applied: Vec::new(),
                watermark: 0,
                accepted: 0,
                applied_total: 0,
            })
            .collect();
        for entry in entries {
            let shard = &mut shards[shard_of(entry.record.user, shard_count)];
            shard.watermark = shard.watermark.max(entry.seq);
            shard.applied.push(entry);
        }
        for shard in &mut shards {
            if let Some(wal) = shard.wal.as_mut() {
                wal.checkpoint(shard.watermark, &shard.applied)?;
            }
        }
        for dir in stale_dirs {
            fs::remove_dir_all(&dir)?;
        }
        for file in legacy_files {
            fs::remove_file(&file)?;
        }

        let metrics = config
            .metrics
            .clone()
            .map(|registry| ShardMetrics::new(IngestMetrics::new(registry), shard_count));
        let history = CrowdHistory::new(
            snapshot.crowd_arc(),
            config.history_depth,
            config.checkpoint_every,
            config.metrics.as_ref(),
        );
        Ok(ShardedIngestEngine {
            metrics,
            history,
            config,
            shard_count,
            per_shard_capacity,
            cell: EpochCell::new(Arc::new(snapshot)),
            inner: Mutex::new(ShardedInner {
                shards,
                next_seq: last_seq + 1,
                total_accepted: 0,
                total_applied: 0,
                epochs_run: 0,
                full_rebuilds: 0,
                last_epoch: None,
            }),
            epoch_guard: Mutex::new(()),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// The resolved shard count.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<PlatformSnapshot> {
        self.cell.load()
    }

    /// The published epoch number.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Records currently queued across every shard.
    pub fn queue_depth(&self) -> usize {
        self.inner.lock().shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Accepts a batch: splits it by [`shard_of`] (preserving the
    /// batch's order within each shard and assigning sequence numbers
    /// from one global counter, so the seq-sorted union of the shard
    /// queues reconstructs the submit order exactly), appends each
    /// slice to its shard's WAL, and enqueues — all under one lock.
    /// If **any** target shard's queue slice would overflow, the whole
    /// batch is rejected and nothing is appended anywhere.
    ///
    /// # Errors
    ///
    /// Same contract as [`IngestEngine::submit`](crate::IngestEngine::submit):
    /// [`IngestError::Backpressure`] (reporting the saturated shard's
    /// queue) and WAL errors reject atomically; an inline-epoch failure
    /// returns [`IngestError::EpochFailed`] with the accepted range.
    pub fn submit(&self, records: Vec<MergeRecord>) -> Result<SubmitReceipt, IngestError> {
        let n = self.shard_count;
        let (first_seq, last_seq, depth) = {
            let mut inner = self.inner.lock();
            let mut incoming = vec![0usize; n];
            for record in &records {
                incoming[shard_of(record.user, n)] += 1;
            }
            for (k, count) in incoming.iter().enumerate() {
                if inner.shards[k].queue.len() + count > self.per_shard_capacity {
                    return Err(IngestError::Backpressure {
                        queued: inner.shards[k].queue.len(),
                        capacity: self.per_shard_capacity,
                        rejected: records.len(),
                    });
                }
            }
            if records.is_empty() {
                return Ok(SubmitReceipt {
                    accepted: 0,
                    first_seq: 0,
                    last_seq: 0,
                    queue_depth: inner.shards.iter().map(|s| s.queue.len()).sum(),
                    epoch: None,
                });
            }
            let first_seq = inner.next_seq;
            let total = records.len();
            let mut per_shard: Vec<Vec<WalEntry>> = vec![Vec::new(); n];
            for (i, record) in records.into_iter().enumerate() {
                let k = shard_of(record.user, n);
                per_shard[k].push(WalEntry {
                    seq: first_seq + i as u64,
                    record,
                });
            }
            let last_seq = first_seq + total as u64 - 1;
            inner.next_seq = last_seq + 1;

            if self.config.wal.is_some() {
                let mut appended: Vec<(usize, crate::wal::WalMark)> = Vec::new();
                let mut appended_bytes = 0u64;
                let mut failure: Option<IngestError> = None;
                for (k, slice) in per_shard.iter().enumerate() {
                    if slice.is_empty() {
                        continue;
                    }
                    let wal = inner.shards[k].wal.as_mut().expect("durable engine");
                    let before = wal.segment_bytes();
                    let mark = wal.mark();
                    match wal.append(slice) {
                        Ok(()) => {
                            appended_bytes += wal.segment_bytes().saturating_sub(before);
                            appended.push((k, mark));
                        }
                        Err(e) => {
                            // Reject the whole batch atomically: undo
                            // this shard's partial frame and every
                            // sibling append that already landed, then
                            // release the sequence numbers. If any
                            // rollback fails the numbers stay consumed
                            // (at-least-once under a double fault; see
                            // DESIGN.md §9).
                            let mut clean = wal.rollback_to(mark).is_ok();
                            for (j, sibling) in appended.drain(..) {
                                let wal = inner.shards[j].wal.as_mut().expect("durable engine");
                                clean &= wal.rollback_to(sibling).is_ok();
                            }
                            if clean {
                                inner.next_seq = first_seq;
                            }
                            failure = Some(e);
                            break;
                        }
                    }
                }
                if let Some(e) = failure {
                    return Err(e);
                }
                if let Some(metrics) = &self.metrics {
                    metrics.base.wal_bytes.add(appended_bytes);
                    metrics.base.wal_records.add(total as u64);
                }
            }

            inner.total_accepted += total as u64;
            if let Some(metrics) = &self.metrics {
                metrics.base.accepted.add(total as u64);
            }
            for (k, slice) in per_shard.into_iter().enumerate() {
                let shard = &mut inner.shards[k];
                shard.accepted += slice.len() as u64;
                shard.queue.extend(slice);
                if let Some(metrics) = &self.metrics {
                    metrics.queue_depth[k].set(shard.queue.len() as i64);
                }
            }
            let depth: usize = inner.shards.iter().map(|s| s.queue.len()).sum();
            if let Some(metrics) = &self.metrics {
                metrics.base.queue_depth.set(depth as i64);
            }
            (first_seq, last_seq, depth)
        };
        let mut report = None;
        if self.config.epoch_batch.is_some_and(|batch| depth >= batch) {
            match self.run_epoch() {
                Ok(r) => report = r,
                Err(source) => {
                    return Err(IngestError::EpochFailed {
                        accepted: (last_seq - first_seq + 1) as usize,
                        first_seq,
                        last_seq,
                        source: Box::new(source),
                    })
                }
            }
        }
        Ok(SubmitReceipt {
            accepted: (last_seq - first_seq + 1) as usize,
            first_seq,
            last_seq,
            queue_depth: self.queue_depth(),
            epoch: report,
        })
    }

    /// Drains every shard and publishes a new snapshot; returns `None`
    /// when all queues were empty. The merge and re-prepare run over
    /// the seq-sorted union (ordering is global), the re-mine fans out
    /// per shard on the `crowdweb-exec` engine, and each shard's delta
    /// is spliced back in prepared user order — byte-identical to the
    /// unsharded engine. Afterwards each shard checkpoints at its own
    /// watermark.
    ///
    /// # Errors
    ///
    /// Merge and pipeline errors re-queue each shard's slice at the
    /// front of that shard's queue, so no accepted record is lost. A
    /// checkpoint failure after the swap is reported but leaves the
    /// published snapshot in place.
    pub fn run_epoch(&self) -> Result<Option<EpochReport>, IngestError> {
        let _epoch = self.epoch_guard.lock();
        let start = Instant::now();
        let per_shard_batch: Vec<Vec<WalEntry>> = {
            let mut inner = self.inner.lock();
            let drained: Vec<Vec<WalEntry>> = inner
                .shards
                .iter_mut()
                .map(|s| s.queue.drain(..).collect())
                .collect();
            if let Some(metrics) = &self.metrics {
                for gauge in &metrics.queue_depth {
                    gauge.set(0);
                }
                metrics.base.queue_depth.set(0);
            }
            drained
        };
        let total: usize = per_shard_batch.iter().map(Vec::len).sum();
        if total == 0 {
            return Ok(None);
        }
        let mut batch: Vec<WalEntry> = per_shard_batch.iter().flatten().cloned().collect();
        batch.sort_by_key(|e| e.seq);

        let previous = self.cell.load();
        let result =
            build_next_snapshot(&self.config, &previous, &batch, |prepared, prev, dirty| {
                self.mine_sharded(prepared, prev, dirty)
            });
        let (snapshot, mode, delta) = match result {
            Ok(next) => next,
            Err(e) => {
                // Put each slice back at the front of its own shard,
                // oldest first, ahead of anything submitted meanwhile.
                let mut inner = self.inner.lock();
                for (k, drained) in per_shard_batch.into_iter().enumerate() {
                    let shard = &mut inner.shards[k];
                    for entry in drained.into_iter().rev() {
                        shard.queue.push_front(entry);
                    }
                    if let Some(metrics) = &self.metrics {
                        metrics.queue_depth[k].set(shard.queue.len() as i64);
                    }
                }
                if let Some(metrics) = &self.metrics {
                    let depth: usize = inner.shards.iter().map(|s| s.queue.len()).sum();
                    metrics.base.queue_depth.set(depth as i64);
                }
                return Err(e);
            }
        };
        let report = EpochReport {
            epoch: snapshot.epoch(),
            applied: total,
            users_remined: delta.users_recomputed,
            mode,
            duration_micros: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
            delta,
        };
        let next = Arc::new(snapshot);
        // Record into the history before publishing, so any epoch a
        // reader can observe as latest is already materializable.
        self.history.record(
            next.epoch(),
            previous.crowd(),
            next.crowd_arc(),
            mode,
            total,
        );
        self.cell.store(next);
        if let Some(metrics) = &self.metrics {
            metrics
                .base
                .epoch_seconds
                .observe(start.elapsed().as_secs_f64());
            metrics.base.dirty_users.set(delta.users_recomputed as i64);
            metrics.base.count_epoch(mode);
            for (k, drained) in per_shard_batch.iter().enumerate() {
                let dirty: BTreeSet<UserId> = drained.iter().map(|e| e.record.user).collect();
                metrics.dirty_users[k].set(dirty.len() as i64);
            }
        }
        let mut inner = self.inner.lock();
        inner.total_applied += total as u64;
        inner.epochs_run += 1;
        if mode == EpochMode::FullRebuild {
            inner.full_rebuilds += 1;
        }
        inner.last_epoch = Some(report);
        // Checkpoint every shard even if one fails, so a single bad
        // disk doesn't stop the others from compacting; the first
        // error is reported after all shards were attempted.
        let mut checkpoint_result: Result<(), IngestError> = Ok(());
        for (k, drained) in per_shard_batch.into_iter().enumerate() {
            let shard = &mut inner.shards[k];
            shard.applied_total += drained.len() as u64;
            if let Some(last) = drained.last() {
                shard.watermark = shard.watermark.max(last.seq);
            }
            shard.applied.extend(drained);
            if let Some(wal) = shard.wal.as_mut() {
                let applied = std::mem::take(&mut shard.applied);
                let result = wal.checkpoint(shard.watermark, &applied);
                shard.applied = applied;
                if checkpoint_result.is_ok() {
                    checkpoint_result = result;
                }
            }
        }
        checkpoint_result?;
        Ok(Some(report))
    }

    /// The sharded re-mine: partitions the to-mine set (dirty users
    /// plus users absent from the previous patterns) by [`shard_of`],
    /// mines each partition as one parallel task, and splices results
    /// back in `prepared.seqdb().user_ids()` order. Produces exactly
    /// what [`PatternMiner::detect_updated`] produces, byte for byte —
    /// the per-user miner is deterministic and the splice order is
    /// global — while giving the executor shard-grained units of work.
    fn mine_sharded(
        &self,
        prepared: &Prepared,
        previous: &[UserPatterns],
        dirty: &BTreeSet<UserId>,
    ) -> Result<Vec<UserPatterns>, IngestError> {
        let miner = self.config.miner()?;
        let prev: HashMap<UserId, &UserPatterns> = previous.iter().map(|p| (p.user, p)).collect();
        let mut buckets: Vec<Vec<UserView<'_>>> = vec![Vec::new(); self.shard_count];
        for view in prepared.seqdb().views() {
            if dirty.contains(&view.user()) || !prev.contains_key(&view.user()) {
                buckets[shard_of(view.user(), self.shard_count)].push(view);
            }
        }
        let metrics = self.metrics.as_ref();
        let mined = parallel_map_with_index(self.config.parallelism, &buckets, |k, views| {
            let started = Instant::now();
            let out: Result<Vec<UserPatterns>, _> =
                views.iter().map(|view| miner.detect_view(*view)).collect();
            if let Some(metrics) = metrics {
                metrics.fanout_seconds[k].observe(started.elapsed().as_secs_f64());
            }
            out
        });
        let mut mined_by_user: HashMap<UserId, UserPatterns> = HashMap::new();
        for shard in mined {
            for patterns in shard.map_err(crowdweb_crowd::PipelineError::Mobility)? {
                mined_by_user.insert(patterns.user, patterns);
            }
        }
        Ok(prepared
            .seqdb()
            .user_ids()
            .iter()
            .map(|user| match mined_by_user.remove(user) {
                Some(fresh) => fresh,
                // Only reachable for users present in `previous` (the
                // bucket filter mined everyone else).
                None => (*prev.get(user).expect("filtered above")).clone(),
            })
            .collect())
    }

    /// Point-in-time statistics, including one [`ShardStats`] row per
    /// shard (`GET /api/v1/ingest/stats`).
    pub fn stats(&self) -> ShardedIngestStats {
        let inner = self.inner.lock();
        let shards: Vec<ShardStats> = inner
            .shards
            .iter()
            .enumerate()
            .map(|(k, shard)| ShardStats {
                shard: k,
                queue_depth: shard.queue.len(),
                queue_capacity: self.per_shard_capacity,
                watermark: shard.watermark,
                total_accepted: shard.accepted,
                total_applied: shard.applied_total,
                wal_segment_bytes: shard.wal.as_ref().map_or(0, Wal::segment_bytes),
                wal_checkpoint_bytes: shard.wal.as_ref().map_or(0, Wal::checkpoint_bytes),
            })
            .collect();
        ShardedIngestStats {
            epoch: self.cell.epoch(),
            history_depth: self.history.depth(),
            history_capacity: self.history.capacity(),
            shard_count: self.shard_count,
            queue_depth: shards.iter().map(|s| s.queue_depth).sum(),
            queue_capacity: self.per_shard_capacity * self.shard_count,
            total_accepted: inner.total_accepted,
            total_applied: inner.total_applied,
            durable: self.config.wal.is_some(),
            wal_segment_bytes: shards.iter().map(|s| s.wal_segment_bytes).sum(),
            wal_checkpoint_bytes: shards.iter().map(|s| s.wal_checkpoint_bytes).sum(),
            epochs_run: inner.epochs_run,
            full_rebuilds: inner.full_rebuilds,
            last_epoch: inner.last_epoch,
            shards,
        }
    }

    /// The engine's bounded epoch history.
    pub fn history(&self) -> &CrowdHistory {
        &self.history
    }

    /// Materializes the crowd model as published at `epoch`, or `None`
    /// when the epoch has been evicted from (or never reached) the
    /// history ring.
    pub fn crowd_at(&self, epoch: u64) -> Option<Arc<CrowdModel>> {
        self.history.materialize(epoch)
    }

    /// One row per retained history epoch, oldest first.
    pub fn epochs(&self) -> Vec<EpochInfo> {
        self.history.epochs()
    }
}

fn shard_wal_config(base: &WalConfig, shard: usize) -> WalConfig {
    WalConfig {
        dir: base.dir.join(format!("shard-{shard}")),
        segment_bytes: base.segment_bytes,
    }
}

/// `shard-<k>` subdirectories with `k` at or beyond the current count.
fn stale_shard_dirs(dir: &Path, shard_count: usize) -> Result<Vec<PathBuf>, IngestError> {
    let mut stale = Vec::new();
    if !dir.exists() {
        return Ok(stale);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(index) = name
            .strip_prefix("shard-")
            .and_then(|k| k.parse::<usize>().ok())
        {
            if path.is_dir() && index >= shard_count {
                stale.push(path);
            }
        }
    }
    stale.sort();
    Ok(stale)
}

/// Segment and checkpoint files an unsharded engine left in the WAL
/// root; deleted once their entries are folded into shard checkpoints.
fn legacy_log_files(dir: &Path) -> Result<Vec<PathBuf>, IngestError> {
    let mut files = Vec::new();
    if !dir.exists() {
        return Ok(files);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_file()
            && (name == "checkpoint.jsonl" || (name.starts_with("seg-") && name.ends_with(".wal")))
        {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IngestEngine;
    use crowdweb_dataset::Timestamp;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("crowdweb-shard-{tag}-{}-{n}", std::process::id()))
    }

    fn config(shards: usize) -> IngestConfig {
        let mut c = IngestConfig::default();
        c.preprocessor = c.preprocessor.min_active_days(20);
        c.shards = shards;
        c
    }

    fn base() -> Dataset {
        crowdweb_synth::SynthConfig::small(51).generate().unwrap()
    }

    fn shifted_records(d: &Dataset, shift_secs: i64, n: usize) -> Vec<MergeRecord> {
        d.checkins()
            .iter()
            .step_by(97)
            .take(n)
            .map(|c| {
                let v = d.venue(c.venue()).unwrap();
                MergeRecord {
                    user: c.user(),
                    venue_key: v.name().to_owned(),
                    category: d.taxonomy().name_of(v.category()).unwrap().to_owned(),
                    location: v.location(),
                    tz_offset_minutes: c.tz_offset_minutes(),
                    time: Timestamp::from_unix_seconds(c.time().unix_seconds() + shift_secs),
                }
            })
            .collect()
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for raw in [0u32, 1, 7, 97, 12_345, u32::MAX] {
            let user = UserId::new(raw);
            for shards in [1usize, 2, 4, 7, 64] {
                let k = shard_of(user, shards);
                assert!(k < shards);
                assert_eq!(k, shard_of(user, shards), "routing must be deterministic");
            }
            assert_eq!(shard_of(user, 1), 0);
        }
    }

    #[test]
    fn effective_shards_clamps() {
        assert!(effective_shards(0) >= 1);
        assert_eq!(effective_shards(3), 3);
        assert_eq!(effective_shards(1_000), MAX_SHARDS);
    }

    #[test]
    fn sharded_epoch_matches_unsharded_engine() {
        let unsharded = IngestEngine::open(base(), config(1)).unwrap();
        let records = shifted_records(unsharded.snapshot().dataset(), 3600, 24);
        unsharded.submit(records.clone()).unwrap();
        unsharded.run_epoch().unwrap().unwrap();
        let want = serde_json::to_string(unsharded.snapshot().crowd()).unwrap();
        for shards in [1usize, 4] {
            let engine = ShardedIngestEngine::open(base(), config(shards)).unwrap();
            let receipt = engine.submit(records.clone()).unwrap();
            assert_eq!(receipt.accepted, 24);
            let report = engine.run_epoch().unwrap().unwrap();
            assert_eq!(report.epoch, 1);
            assert_eq!(report.applied, 24);
            assert_eq!(
                serde_json::to_string(engine.snapshot().crowd()).unwrap(),
                want,
                "{shards} shards diverged from the unsharded engine"
            );
        }
    }

    #[test]
    fn backpressure_reports_the_saturated_shard() {
        let mut cfg = config(4);
        cfg.queue_capacity = 4; // one slot per shard
        let engine = ShardedIngestEngine::open(base(), cfg).unwrap();
        let records = shifted_records(engine.snapshot().dataset(), 3600, 8);
        let err = engine.submit(records).unwrap_err();
        match err {
            IngestError::Backpressure {
                capacity, rejected, ..
            } => {
                assert_eq!(capacity, 1, "per-shard capacity");
                assert_eq!(rejected, 8);
            }
            other => panic!("expected backpressure, got {other:?}"),
        }
        assert_eq!(engine.queue_depth(), 0, "rejected batch must not enqueue");
    }

    #[test]
    fn stats_expose_per_shard_rows() {
        let dir = temp_dir("stats");
        let mut cfg = config(4);
        cfg.wal = Some(WalConfig::new(&dir));
        let engine = ShardedIngestEngine::open(base(), cfg).unwrap();
        let records = shifted_records(engine.snapshot().dataset(), 3600, 16);
        engine.submit(records).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.shard_count, 4);
        assert_eq!(stats.shards.len(), 4);
        assert_eq!(stats.queue_depth, 16);
        assert_eq!(
            stats.shards.iter().map(|s| s.queue_depth).sum::<usize>(),
            16
        );
        assert!(stats.durable);
        engine.run_epoch().unwrap().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.total_applied, 16);
        let applied: u64 = stats.shards.iter().map(|s| s.total_applied).sum();
        assert_eq!(applied, 16);
        // Watermarks cover every applied sequence number.
        let max_watermark = stats.shards.iter().map(|s| s.watermark).max().unwrap();
        assert_eq!(max_watermark, 16);
        assert!(serde_json::to_string(&stats).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn per_shard_metrics_are_bounded_and_recorded() {
        let registry = crowdweb_obs::MetricsRegistry::new();
        let mut cfg = config(2);
        cfg.metrics = Some(registry.clone());
        let engine = ShardedIngestEngine::open(base(), cfg).unwrap();
        let records = shifted_records(engine.snapshot().dataset(), 3600, 12);
        engine.submit(records).unwrap();
        let queued: i64 = (0..2)
            .map(|k| {
                registry
                    .gauge_value(
                        "crowdweb_ingest_shard_queue_depth",
                        &[("shard", &k.to_string())],
                    )
                    .unwrap()
            })
            .sum();
        assert_eq!(queued, 12);
        engine.run_epoch().unwrap().unwrap();
        for k in 0..2usize {
            let label = k.to_string();
            let (count, _) = registry
                .histogram_stats(SHARD_FANOUT_SECONDS, &[("shard", &label)])
                .expect("per-shard fan-out histogram registered");
            assert_eq!(count, 1, "shard {k} must record exactly one fan-out");
            assert_eq!(
                registry.gauge_value("crowdweb_ingest_shard_queue_depth", &[("shard", &label)]),
                Some(0)
            );
        }
    }

    #[test]
    fn shard_wal_replay_reaches_same_snapshot() {
        let dir = temp_dir("replay");
        let mut cfg = config(4);
        cfg.wal = Some(WalConfig::new(&dir));
        let records;
        let crowd_json;
        {
            let engine = ShardedIngestEngine::open(base(), cfg.clone()).unwrap();
            records = shifted_records(engine.snapshot().dataset(), 3600, 12);
            engine.submit(records.clone()).unwrap();
            engine.run_epoch().unwrap().unwrap();
            crowd_json = serde_json::to_string(engine.snapshot().crowd()).unwrap();
        } // crash
        let engine = ShardedIngestEngine::open(base(), cfg).unwrap();
        assert_eq!(engine.epoch(), 0);
        assert_eq!(
            serde_json::to_string(engine.snapshot().crowd()).unwrap(),
            crowd_json,
            "replayed snapshot diverged from pre-crash snapshot"
        );
        // The global sequence continues after the replayed tail.
        let receipt = engine.submit(records).unwrap();
        assert_eq!(receipt.first_seq, 13);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_with_fewer_shards_folds_stale_directories() {
        let dir = temp_dir("fold");
        let mut cfg = config(4);
        cfg.wal = Some(WalConfig::new(&dir));
        let records;
        let crowd_json;
        {
            let engine = ShardedIngestEngine::open(base(), cfg.clone()).unwrap();
            records = shifted_records(engine.snapshot().dataset(), 3600, 12);
            engine.submit(records.clone()).unwrap();
            crowd_json = serde_json::to_string(engine.snapshot().crowd()).unwrap();
        } // crash before any epoch
        cfg.shards = 2;
        let engine = ShardedIngestEngine::open(base(), cfg.clone()).unwrap();
        let merged = serde_json::to_string(engine.snapshot().crowd()).unwrap();
        assert_ne!(
            merged, crowd_json,
            "replayed records must be part of the rebuilt snapshot"
        );
        assert!(!dir.join("shard-2").exists(), "stale shard dir must fold");
        assert!(!dir.join("shard-3").exists(), "stale shard dir must fold");
        // Records survived the fold: a fresh 2-shard open still has them.
        drop(engine);
        let engine = ShardedIngestEngine::open(base(), cfg).unwrap();
        assert_eq!(
            serde_json::to_string(engine.snapshot().crowd()).unwrap(),
            merged
        );
        assert_eq!(engine.submit(records).unwrap().first_seq, 13);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_unsharded_wal_is_migrated() {
        let dir = temp_dir("migrate");
        let mut cfg = config(2);
        cfg.wal = Some(WalConfig::new(&dir));
        let records;
        let crowd_json;
        {
            let engine = IngestEngine::open(base(), cfg.clone()).unwrap();
            records = shifted_records(engine.snapshot().dataset(), 3600, 12);
            engine.submit(records.clone()).unwrap();
            engine.run_epoch().unwrap().unwrap();
            crowd_json = serde_json::to_string(engine.snapshot().crowd()).unwrap();
        } // crash; switch the deployment to the sharded engine
        let engine = ShardedIngestEngine::open(base(), cfg).unwrap();
        assert_eq!(
            serde_json::to_string(engine.snapshot().crowd()).unwrap(),
            crowd_json,
            "migration from the unsharded layout lost records"
        );
        assert!(
            !dir.join("checkpoint.jsonl").exists(),
            "legacy root checkpoint must be folded away"
        );
        assert_eq!(engine.submit(records).unwrap().first_seq, 13);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
