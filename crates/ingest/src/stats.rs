//! Observability types for the ingest subsystem.

use crowdweb_crowd::CrowdDelta;
use serde::{Deserialize, Serialize};

/// How an epoch rebuilt the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochMode {
    /// Only dirty users were re-prepared, re-mined, and re-placed.
    Incremental,
    /// The batch moved the study window (or otherwise invalidated the
    /// shortcut); the full pipeline ran.
    FullRebuild,
}

/// Summary of one completed epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// The epoch number the new snapshot was published at.
    pub epoch: u64,
    /// Records drained from the queue and applied.
    pub applied: usize,
    /// Users whose patterns were re-mined.
    pub users_remined: usize,
    /// Incremental or full rebuild.
    pub mode: EpochMode,
    /// Wall-clock time of the epoch, in microseconds.
    pub duration_micros: u64,
    /// How much of the crowd model moved.
    pub delta: CrowdDelta,
}

/// Receipt returned to a submitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SubmitReceipt {
    /// Records accepted into the queue (all or nothing per batch).
    pub accepted: usize,
    /// Sequence number of the first accepted record (0 if none).
    pub first_seq: u64,
    /// Sequence number of the last accepted record (0 if none).
    pub last_seq: u64,
    /// Queue depth right after the batch was enqueued.
    pub queue_depth: usize,
    /// Present when the submit tripped the auto-epoch threshold and an
    /// epoch ran inline.
    pub epoch: Option<EpochReport>,
}

/// One shard's slice of [`ShardedIngestStats`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ShardStats {
    /// Shard index (`hash(user) % shard_count`).
    pub shard: usize,
    /// Records waiting in this shard's queue.
    pub queue_depth: usize,
    /// This shard's queue capacity (the engine capacity split evenly).
    pub queue_capacity: usize,
    /// Highest sequence number applied from this shard (0 if none);
    /// persisted as the shard checkpoint's header and reconciled on
    /// recovery.
    pub watermark: u64,
    /// Records routed to this shard since the engine opened.
    pub total_accepted: u64,
    /// Records from this shard applied to a snapshot.
    pub total_applied: u64,
    /// Live WAL segment bytes in this shard's directory.
    pub wal_segment_bytes: u64,
    /// Bytes of this shard's current checkpoint.
    pub wal_checkpoint_bytes: u64,
}

/// Point-in-time statistics of the sharded engine
/// (`GET /api/v1/ingest/stats`): engine-wide totals plus one
/// [`ShardStats`] row per shard.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardedIngestStats {
    /// Current published epoch.
    pub epoch: u64,
    /// Epochs currently retained by the history ring (scrubbable via
    /// `?epoch=N`).
    pub history_depth: usize,
    /// The history ring's retention capacity.
    pub history_capacity: usize,
    /// Resolved shard count.
    pub shard_count: usize,
    /// Records waiting across every shard queue.
    pub queue_depth: usize,
    /// Total capacity across every shard queue.
    pub queue_capacity: usize,
    /// Records accepted since the engine opened.
    pub total_accepted: u64,
    /// Records applied to a snapshot since the engine opened.
    pub total_applied: u64,
    /// Whether write-ahead logs are configured.
    pub durable: bool,
    /// Live WAL segment bytes summed over every shard.
    pub wal_segment_bytes: u64,
    /// Checkpoint bytes summed over every shard.
    pub wal_checkpoint_bytes: u64,
    /// Epochs run since the engine opened.
    pub epochs_run: u64,
    /// How many of those fell back to a full pipeline rebuild.
    pub full_rebuilds: u64,
    /// The most recent epoch, if any has run.
    pub last_epoch: Option<EpochReport>,
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
}

/// Point-in-time ingest statistics (`GET /api/ingest/stats`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct IngestStats {
    /// Current published epoch.
    pub epoch: u64,
    /// Epochs currently retained by the history ring (scrubbable via
    /// `?epoch=N`).
    pub history_depth: usize,
    /// The history ring's retention capacity.
    pub history_capacity: usize,
    /// Records waiting in the queue.
    pub queue_depth: usize,
    /// The queue's capacity.
    pub queue_capacity: usize,
    /// Records accepted since the engine opened.
    pub total_accepted: u64,
    /// Records applied to a snapshot since the engine opened.
    pub total_applied: u64,
    /// Whether a write-ahead log is configured.
    pub durable: bool,
    /// Live WAL segment bytes (un-checkpointed tail).
    pub wal_segment_bytes: u64,
    /// Bytes of the current WAL checkpoint.
    pub wal_checkpoint_bytes: u64,
    /// Epochs run since the engine opened.
    pub epochs_run: u64,
    /// How many of those fell back to a full pipeline rebuild.
    pub full_rebuilds: u64,
    /// The most recent epoch, if any has run.
    pub last_epoch: Option<EpochReport>,
}
