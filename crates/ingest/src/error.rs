//! Ingestion errors.

use crowdweb_crowd::PipelineError;
use crowdweb_dataset::DatasetError;
use std::error::Error;
use std::fmt;
use std::io;

/// Error from any part of the ingestion subsystem.
#[derive(Debug)]
pub enum IngestError {
    /// The bounded queue cannot absorb the batch; retry after an epoch
    /// drains it.
    Backpressure {
        /// Records currently queued.
        queued: usize,
        /// The queue's configured capacity.
        capacity: usize,
        /// Size of the rejected batch.
        rejected: usize,
    },
    /// Write-ahead-log I/O failed.
    Wal(io::Error),
    /// A WAL file held an unreadable record outside the recoverable
    /// torn-tail case (e.g. a corrupt checkpoint).
    Corrupt(String),
    /// Merging the batch into the dataset failed.
    Dataset(DatasetError),
    /// Rebuilding the snapshot pipeline failed.
    Pipeline(PipelineError),
    /// An inline epoch failed *after* the submitted batch was accepted
    /// (durably logged and queued). The batch is still held by the
    /// engine — queued for the next epoch, or already applied if only
    /// the post-publish checkpoint failed — so the client must **not**
    /// re-submit it; doing so would double-apply every record.
    EpochFailed {
        /// Records of the triggering batch that were accepted.
        accepted: usize,
        /// Sequence number of the first accepted record.
        first_seq: u64,
        /// Sequence number of the last accepted record.
        last_seq: u64,
        /// Why the inline epoch failed.
        source: Box<IngestError>,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Backpressure {
                queued,
                capacity,
                rejected,
            } => write!(
                f,
                "ingest queue full ({queued}/{capacity} queued, batch of {rejected} rejected)"
            ),
            IngestError::Wal(e) => write!(f, "write-ahead log I/O failed: {e}"),
            IngestError::Corrupt(msg) => write!(f, "write-ahead log corrupt: {msg}"),
            IngestError::Dataset(e) => write!(f, "merging ingested records failed: {e}"),
            IngestError::Pipeline(e) => write!(f, "snapshot pipeline failed: {e}"),
            IngestError::EpochFailed {
                accepted,
                first_seq,
                last_seq,
                source,
            } => write!(
                f,
                "inline epoch failed after accepting {accepted} records \
                 (seq {first_seq}..={last_seq}; do not re-submit): {source}"
            ),
        }
    }
}

impl Error for IngestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IngestError::Wal(e) => Some(e),
            IngestError::Dataset(e) => Some(e),
            IngestError::Pipeline(e) => Some(e),
            IngestError::EpochFailed { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Wal(e)
    }
}

impl From<DatasetError> for IngestError {
    fn from(e: DatasetError) -> Self {
        IngestError::Dataset(e)
    }
}

impl From<PipelineError> for IngestError {
    fn from(e: PipelineError) -> Self {
        IngestError::Pipeline(e)
    }
}
