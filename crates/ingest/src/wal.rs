//! Durable append-only write-ahead log for ingested check-ins.
//!
//! Every accepted [`MergeRecord`] is framed as
//! `[u32 len][u32 crc32][JSON payload]` (both integers little-endian)
//! and appended to the active segment file before the record is
//! queued, so an accepted batch survives a crash. Segments rotate at a
//! byte threshold and are named `seg-<first-seq>.wal`.
//!
//! After each epoch the engine writes a **checkpoint**: a JSON-lines
//! file holding a `{"last_seq":N}` header plus every applied entry,
//! written to a temp file and atomically renamed. Segments fully
//! covered by the checkpoint are deleted (the *truncate-after-snapshot*
//! compaction), so WAL size tracks the un-checkpointed tail, not the
//! full history.
//!
//! Replay tolerates a torn tail: decoding stops at the first frame
//! whose length, CRC, or payload fails to verify; the file is truncated
//! back to the last good record boundary and any later segments (which
//! could only exist if the torn one was not really the tail) are
//! discarded. Entries with `seq` at or below the checkpoint header are
//! skipped, so replay after a crash between append and checkpoint never
//! double-applies.

use crate::IngestError;
use crowdweb_dataset::MergeRecord;
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One durable log entry: a record plus its global sequence number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalEntry {
    /// Monotonic sequence number assigned at submit time.
    pub seq: u64,
    /// The ingested record.
    pub record: MergeRecord,
}

#[derive(Debug, Serialize, Deserialize)]
struct CheckpointHeader {
    last_seq: u64,
}

/// Where and how the log is stored.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding segments and the checkpoint.
    pub dir: PathBuf,
    /// Rotation threshold: a segment reaching this many bytes is closed
    /// and the next append opens a fresh one.
    pub segment_bytes: u64,
}

impl WalConfig {
    /// Default configuration over `dir` (4 MiB segments).
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            segment_bytes: 4 * 1024 * 1024,
        }
    }

    /// Sets the segment rotation threshold.
    pub fn segment_bytes(mut self, bytes: u64) -> WalConfig {
        self.segment_bytes = bytes;
        self
    }
}

/// Everything recovered from disk by [`Wal::open`].
#[derive(Debug)]
pub struct WalRecovery {
    /// All surviving entries — checkpointed plus un-checkpointed tail —
    /// in ascending `seq` order.
    pub entries: Vec<WalEntry>,
    /// Highest sequence number seen (0 when the log was empty).
    pub last_seq: u64,
}

#[derive(Debug)]
struct SegmentMeta {
    path: PathBuf,
    last_seq: u64,
    bytes: u64,
}

#[derive(Debug)]
struct ActiveSegment {
    file: File,
    meta: SegmentMeta,
}

/// A point-in-time position of the log used to undo one append; see
/// [`Wal::mark`] / [`Wal::rollback_to`].
#[derive(Debug)]
pub(crate) struct WalMark {
    segment_count: usize,
    /// `(path, bytes, last_seq)` of the active segment, if one existed.
    active: Option<(PathBuf, u64, u64)>,
}

/// The write-ahead log (see the [module docs](self)).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    segment_limit: u64,
    /// Closed segments, in ascending first-seq order.
    segments: Vec<SegmentMeta>,
    active: Option<ActiveSegment>,
    checkpoint_bytes: u64,
}

/// Frames larger than this are treated as corruption, not records.
const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;
const FRAME_HEADER: usize = 8;
const CHECKPOINT_FILE: &str = "checkpoint.jsonl";
const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// Bitwise CRC-32 (IEEE polynomial), table-free.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

impl Wal {
    /// Opens (or creates) the log under `config.dir` and replays every
    /// surviving entry. A torn final record is truncated away; see the
    /// [module docs](self) for the recovery rules.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`IngestError::Corrupt`] for an unreadable
    /// checkpoint (segment corruption is recovered, not fatal).
    pub fn open(config: &WalConfig) -> Result<(Wal, WalRecovery), IngestError> {
        fs::create_dir_all(&config.dir)?;
        // Drop a stale temp checkpoint from a crash mid-rewrite.
        let _ = fs::remove_file(config.dir.join(CHECKPOINT_TMP));

        let mut entries: Vec<WalEntry> = Vec::new();
        let mut last_seq = 0u64;
        let mut checkpoint_bytes = 0u64;
        let checkpoint_path = config.dir.join(CHECKPOINT_FILE);
        let mut checkpoint_last = 0u64;
        if checkpoint_path.exists() {
            let text = fs::read_to_string(&checkpoint_path)?;
            checkpoint_bytes = text.len() as u64;
            let mut lines = text.lines();
            let header: CheckpointHeader = match lines.next() {
                Some(line) => serde_json::from_str(line)
                    .map_err(|e| IngestError::Corrupt(format!("checkpoint header: {e}")))?,
                None => CheckpointHeader { last_seq: 0 },
            };
            checkpoint_last = header.last_seq;
            for line in lines {
                let entry: WalEntry = serde_json::from_str(line)
                    .map_err(|e| IngestError::Corrupt(format!("checkpoint entry: {e}")))?;
                last_seq = last_seq.max(entry.seq);
                entries.push(entry);
            }
            last_seq = last_seq.max(checkpoint_last);
        }

        let mut segment_paths: Vec<PathBuf> = fs::read_dir(&config.dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".wal"))
            })
            .collect();
        // Zero-padded first-seq names make lexicographic order numeric.
        segment_paths.sort();

        let mut segments = Vec::new();
        let mut torn = false;
        for path in segment_paths {
            if torn {
                // Anything after a torn segment cannot be trusted.
                fs::remove_file(&path)?;
                continue;
            }
            let bytes = fs::read(&path)?;
            let (decoded, good_offset) = decode_segment(&bytes);
            if good_offset < bytes.len() {
                torn = true;
                if good_offset == 0 {
                    fs::remove_file(&path)?;
                } else {
                    OpenOptions::new()
                        .write(true)
                        .open(&path)?
                        .set_len(good_offset as u64)?;
                }
            }
            let mut seg_last = 0u64;
            for entry in decoded {
                seg_last = seg_last.max(entry.seq);
                last_seq = last_seq.max(entry.seq);
                if entry.seq > checkpoint_last {
                    entries.push(entry);
                }
            }
            if good_offset > 0 {
                segments.push(SegmentMeta {
                    path,
                    last_seq: seg_last,
                    bytes: good_offset as u64,
                });
            }
        }

        entries.sort_by_key(|e| e.seq);
        entries.dedup_by_key(|e| e.seq);
        let wal = Wal {
            dir: config.dir.clone(),
            segment_limit: config.segment_bytes,
            segments,
            active: None,
            checkpoint_bytes,
        };
        Ok((wal, WalRecovery { entries, last_seq }))
    }

    /// Appends a batch durably (written, flushed, and synced before
    /// returning). Rotates to a fresh segment when the active one has
    /// reached the configured threshold.
    ///
    /// # Errors
    ///
    /// I/O failures; on error the in-memory state still matches the
    /// bytes known to be on disk.
    pub fn append(&mut self, entries: &[WalEntry]) -> Result<(), IngestError> {
        let Some(first) = entries.first() else {
            return Ok(());
        };
        if self.active.is_none() {
            let path = self.dir.join(format!("seg-{:020}.wal", first.seq));
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            self.active = Some(ActiveSegment {
                file,
                meta: SegmentMeta {
                    path,
                    last_seq: 0,
                    bytes: 0,
                },
            });
        }
        let active = self.active.as_mut().expect("created above");
        let mut buf = Vec::new();
        for entry in entries {
            let payload = serde_json::to_string(entry)
                .expect("WAL entries serialize infallibly")
                .into_bytes();
            let len = u32::try_from(payload.len()).expect("record under 4 GiB");
            buf.extend_from_slice(&len.to_le_bytes());
            buf.extend_from_slice(&crc32(&payload).to_le_bytes());
            buf.extend_from_slice(&payload);
        }
        active.file.write_all(&buf)?;
        active.file.sync_data()?;
        active.meta.bytes += buf.len() as u64;
        active.meta.last_seq = entries.last().expect("non-empty").seq;
        if active.meta.bytes >= self.segment_limit {
            let closed = self.active.take().expect("checked above");
            self.segments.push(closed.meta);
        }
        Ok(())
    }

    /// Captures the log's position so a subsequent [`Wal::append`] can
    /// be undone with [`Wal::rollback_to`].
    pub(crate) fn mark(&self) -> WalMark {
        WalMark {
            segment_count: self.segments.len(),
            active: self
                .active
                .as_ref()
                .map(|a| (a.meta.path.clone(), a.meta.bytes, a.meta.last_seq)),
        }
    }

    /// Undoes at most one `append` issued since `mark` was captured,
    /// truncating the segment it wrote back to the marked length (or
    /// deleting the segment the append created). Used by submit to
    /// reject a batch atomically when a sibling shard's append fails,
    /// and to discard the partial frame of an append that itself
    /// failed.
    ///
    /// # Errors
    ///
    /// I/O failures; the caller must then treat the batch's sequence
    /// numbers as consumed (replay may resurrect the rolled-back
    /// records, so they must never be re-issued).
    pub(crate) fn rollback_to(&mut self, mark: WalMark) -> Result<(), IngestError> {
        match mark.active {
            Some((path, bytes, last_seq)) => {
                let still_active = self.active.as_ref().is_some_and(|a| a.meta.path == path);
                if still_active {
                    let active = self.active.as_mut().expect("checked above");
                    active.file.set_len(bytes)?;
                    active.meta.bytes = bytes;
                    active.meta.last_seq = last_seq;
                } else {
                    // The append rotated the marked segment into the
                    // closed list; truncate it and reinstate it as
                    // active so later appends continue where the mark
                    // left off.
                    let idx = self
                        .segments
                        .iter()
                        .position(|s| s.path == path)
                        .ok_or_else(|| {
                            IngestError::Corrupt("rollback lost track of its segment".to_owned())
                        })?;
                    let meta = self.segments.remove(idx);
                    let file = OpenOptions::new().append(true).open(&meta.path)?;
                    file.set_len(bytes)?;
                    self.active = Some(ActiveSegment {
                        file,
                        meta: SegmentMeta {
                            path: meta.path,
                            last_seq,
                            bytes,
                        },
                    });
                }
            }
            None => {
                // The append created the segment it wrote; remove it.
                if let Some(active) = self.active.take() {
                    fs::remove_file(&active.meta.path)?;
                } else if self.segments.len() > mark.segment_count {
                    let meta = self.segments.pop().expect("checked above");
                    fs::remove_file(&meta.path)?;
                }
            }
        }
        Ok(())
    }

    /// Writes a checkpoint covering every entry with `seq <=
    /// last_seq` (the `applied` log), then deletes segments the
    /// checkpoint fully covers. The checkpoint is written to a temp
    /// file and renamed, so a crash mid-write keeps the previous one.
    ///
    /// # Errors
    ///
    /// I/O failures. A failure after the rename leaves extra segments
    /// behind; replay deduplicates them by sequence number.
    pub fn checkpoint(&mut self, last_seq: u64, applied: &[WalEntry]) -> Result<(), IngestError> {
        let mut text = String::new();
        text.push_str(
            &serde_json::to_string(&CheckpointHeader { last_seq })
                .expect("header serializes infallibly"),
        );
        text.push('\n');
        for entry in applied {
            text.push_str(&serde_json::to_string(entry).expect("WAL entries serialize infallibly"));
            text.push('\n');
        }
        let tmp = self.dir.join(CHECKPOINT_TMP);
        let final_path = self.dir.join(CHECKPOINT_FILE);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &final_path)?;
        self.checkpoint_bytes = text.len() as u64;

        let mut kept = Vec::new();
        for seg in self.segments.drain(..) {
            if seg.last_seq <= last_seq {
                fs::remove_file(&seg.path)?;
            } else {
                kept.push(seg);
            }
        }
        self.segments = kept;
        if self
            .active
            .as_ref()
            .is_some_and(|a| a.meta.last_seq <= last_seq)
        {
            let active = self.active.take().expect("checked above");
            fs::remove_file(&active.meta.path)?;
        }
        Ok(())
    }

    /// Total bytes across live segment files.
    pub fn segment_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum::<u64>()
            + self.active.as_ref().map_or(0, |a| a.meta.bytes)
    }

    /// Bytes of the current checkpoint file.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.checkpoint_bytes
    }

    /// Number of live segment files (including the active one).
    pub fn segment_count(&self) -> usize {
        self.segments.len() + usize::from(self.active.is_some())
    }

    /// The directory the log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Decodes frames from a segment's bytes. Returns the entries decoded
/// and the offset of the first byte that failed to verify (equal to
/// `bytes.len()` for a clean segment).
fn decode_segment(bytes: &[u8]) -> (Vec<WalEntry>, usize) {
    let mut entries = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_RECORD_BYTES {
            return (entries, offset);
        }
        let start = offset + FRAME_HEADER;
        let Some(end) = start
            .checked_add(len as usize)
            .filter(|&e| e <= bytes.len())
        else {
            return (entries, offset);
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            return (entries, offset);
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            return (entries, offset);
        };
        let Ok(entry) = serde_json::from_str::<WalEntry>(text) else {
            return (entries, offset);
        };
        entries.push(entry);
        offset = end;
    }
    (entries, offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdweb_dataset::{Timestamp, UserId};
    use crowdweb_geo::LatLon;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_wal_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("crowdweb-wal-{tag}-{}-{n}", std::process::id()))
    }

    fn entry(seq: u64) -> WalEntry {
        WalEntry {
            seq,
            record: MergeRecord {
                user: UserId::new(seq as u32),
                venue_key: format!("venue-{seq}"),
                category: "Coffee Shop".to_owned(),
                location: LatLon::new(40.7501, -73.9876).unwrap(),
                tz_offset_minutes: -240,
                time: Timestamp::from_unix_seconds(1_333_000_000 + seq as i64),
            },
        }
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_across_reopen() {
        let dir = temp_wal_dir("roundtrip");
        let config = WalConfig::new(&dir);
        let written: Vec<WalEntry> = (1..=5).map(entry).collect();
        {
            let (mut wal, rec) = Wal::open(&config).unwrap();
            assert!(rec.entries.is_empty());
            wal.append(&written).unwrap();
            assert!(wal.segment_bytes() > 0);
        } // crash: drop without checkpoint
        let (_, rec) = Wal::open(&config).unwrap();
        assert_eq!(rec.entries, written);
        assert_eq!(rec.last_seq, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_at_threshold() {
        let dir = temp_wal_dir("rotate");
        let config = WalConfig::new(&dir).segment_bytes(256);
        let (mut wal, _) = Wal::open(&config).unwrap();
        for seq in 1..=8 {
            wal.append(&[entry(seq)]).unwrap();
        }
        assert!(wal.segment_count() > 1, "no rotation happened");
        let (_, rec) = Wal::open(&config).unwrap();
        assert_eq!(rec.entries.len(), 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_covered_segments() {
        let dir = temp_wal_dir("compact");
        let config = WalConfig::new(&dir).segment_bytes(256);
        let (mut wal, _) = Wal::open(&config).unwrap();
        let applied: Vec<WalEntry> = (1..=8).map(entry).collect();
        for e in &applied {
            wal.append(std::slice::from_ref(e)).unwrap();
        }
        wal.checkpoint(8, &applied).unwrap();
        assert_eq!(wal.segment_count(), 0, "covered segments must be deleted");
        assert_eq!(wal.segment_bytes(), 0);
        assert!(wal.checkpoint_bytes() > 0);
        // Everything survives via the checkpoint.
        let (_, rec) = Wal::open(&config).unwrap();
        assert_eq!(rec.entries, applied);
        assert_eq!(rec.last_seq, 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_keeps_newer_segments() {
        let dir = temp_wal_dir("keepnew");
        let config = WalConfig::new(&dir).segment_bytes(64); // every batch rotates
        let (mut wal, _) = Wal::open(&config).unwrap();
        let applied: Vec<WalEntry> = (1..=2).map(entry).collect();
        wal.append(&applied).unwrap();
        wal.append(&[entry(3)]).unwrap(); // newer than the checkpoint
        wal.checkpoint(2, &applied).unwrap();
        assert!(wal.segment_count() >= 1, "uncovered segment was deleted");
        let (_, rec) = Wal::open(&config).unwrap();
        assert_eq!(rec.entries.len(), 3);
        assert_eq!(rec.last_seq, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rollback_undoes_one_append() {
        let dir = temp_wal_dir("rollback");
        let config = WalConfig::new(&dir);
        let (mut wal, _) = Wal::open(&config).unwrap();
        // Rolling back the very first append removes its segment.
        let mark = wal.mark();
        wal.append(&[entry(1), entry(2)]).unwrap();
        wal.rollback_to(mark).unwrap();
        assert_eq!(wal.segment_bytes(), 0);
        // Rolling back a later append truncates to the marked length.
        wal.append(&[entry(1)]).unwrap();
        let kept_bytes = wal.segment_bytes();
        let mark = wal.mark();
        wal.append(&[entry(2), entry(3)]).unwrap();
        wal.rollback_to(mark).unwrap();
        assert_eq!(wal.segment_bytes(), kept_bytes);
        // Appends continue cleanly after a rollback.
        wal.append(&[entry(2)]).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&config).unwrap();
        assert_eq!(rec.entries, vec![entry(1), entry(2)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rollback_reinstates_a_rotated_segment() {
        let dir = temp_wal_dir("rollback-rotate");
        let config = WalConfig::new(&dir).segment_bytes(64); // every batch rotates
        let (mut wal, _) = Wal::open(&config).unwrap();
        wal.append(&[entry(1)]).unwrap();
        assert_eq!(wal.segment_count(), 1);
        // This append starts a new segment AND rotates it closed.
        let mark = wal.mark();
        wal.append(&[entry(2)]).unwrap();
        assert_eq!(wal.segment_count(), 2);
        wal.rollback_to(mark).unwrap();
        let (_, rec) = Wal::open(&config).unwrap();
        assert_eq!(rec.entries, vec![entry(1)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_last_good_record() {
        let dir = temp_wal_dir("torn");
        let config = WalConfig::new(&dir);
        let written: Vec<WalEntry> = (1..=4).map(entry).collect();
        {
            let (mut wal, _) = Wal::open(&config).unwrap();
            wal.append(&written).unwrap();
        }
        // Tear the final record: chop 3 bytes off the segment.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "wal"))
            .unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (wal, rec) = Wal::open(&config).unwrap();
        assert_eq!(rec.entries, written[..3].to_vec());
        assert_eq!(rec.last_seq, 3);
        // The tear was truncated away: a second replay is clean.
        drop(wal);
        let (_, rec) = Wal::open(&config).unwrap();
        assert_eq!(rec.entries.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_drops_later_segments() {
        let dir = temp_wal_dir("corrupt");
        let config = WalConfig::new(&dir).segment_bytes(64); // rotate per batch
        {
            let (mut wal, _) = Wal::open(&config).unwrap();
            for seq in 1..=3 {
                wal.append(&[entry(seq)]).unwrap();
            }
            assert!(wal.segment_count() >= 2);
        }
        // Flip a payload byte in the FIRST segment: everything after it
        // is untrustworthy.
        let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "wal"))
            .collect();
        segs.sort();
        let mut bytes = std::fs::read(&segs[0]).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&segs[0], &bytes).unwrap();
        let (_, rec) = Wal::open(&config).unwrap();
        assert!(rec.entries.is_empty(), "{:?}", rec.entries);
        // Later segments are gone from disk too.
        let remaining = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "wal"))
            .count();
        assert_eq!(remaining, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
