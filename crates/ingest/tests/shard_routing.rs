//! Shard routing stability: the `hash(user) % N` placement is a pure
//! function of the user id, so it must survive engine restarts — each
//! shard's WAL checkpoint only covers the entries routed to it, and a
//! reroute after a restart would orphan them.

use crowdweb_dataset::{Dataset, MergeRecord, Timestamp, UserId};
use crowdweb_ingest::{shard_of, IngestConfig, ShardedIngestEngine, Wal, WalConfig, MAX_SHARDS};
use proptest::prelude::*;

proptest! {
    /// The route is deterministic, in range, and independent of any
    /// engine or process state: two `UserId`s constructed separately
    /// from the same raw id always land on the same shard.
    #[test]
    fn prop_routing_is_pure_and_in_range(
        raw in proptest::collection::vec(0u32..u32::MAX, 1..64),
        shards in 1usize..=MAX_SHARDS,
    ) {
        for &id in &raw {
            let first = shard_of(UserId::new(id), shards);
            let again = shard_of(UserId::new(id), shards);
            prop_assert!(first < shards);
            prop_assert_eq!(first, again);
        }
    }

    /// Splitting a batch by shard and re-merging by sequence number
    /// reconstructs the original submit order exactly — the invariant
    /// the sharded engine's determinism rests on.
    #[test]
    fn prop_shard_split_reconstructs_submit_order(
        users in proptest::collection::vec(0u32..512, 1..128),
        shards in 1usize..=8,
    ) {
        let mut buckets: Vec<Vec<(u64, u32)>> = vec![Vec::new(); shards];
        for (i, &user) in users.iter().enumerate() {
            buckets[shard_of(UserId::new(user), shards)].push((i as u64 + 1, user));
        }
        // Within each shard the batch order (== seq order) survives.
        for bucket in &buckets {
            prop_assert!(bucket.windows(2).all(|w| w[0].0 < w[1].0));
        }
        let mut merged: Vec<(u64, u32)> = buckets.into_iter().flatten().collect();
        merged.sort_by_key(|&(seq, _)| seq);
        let reconstructed: Vec<u32> = merged.into_iter().map(|(_, user)| user).collect();
        prop_assert_eq!(reconstructed, users);
    }
}

fn base() -> Dataset {
    crowdweb_synth::SynthConfig::small(51).generate().unwrap()
}

fn shifted_records(d: &Dataset, n: usize) -> Vec<MergeRecord> {
    d.checkins()
        .iter()
        .step_by(97)
        .take(n)
        .map(|c| {
            let v = d.venue(c.venue()).unwrap();
            MergeRecord {
                user: c.user(),
                venue_key: v.name().to_owned(),
                category: d.taxonomy().name_of(v.category()).unwrap().to_owned(),
                location: v.location(),
                tz_offset_minutes: c.tz_offset_minutes(),
                time: Timestamp::from_unix_seconds(c.time().unix_seconds() + 3600),
            }
        })
        .collect()
}

/// After a crash and reopen, every persisted entry sits in the WAL
/// directory of exactly the shard `shard_of` names today — on-disk
/// placement and the routing function never drift apart.
#[test]
fn restart_preserves_on_disk_routing() {
    let dir = std::env::temp_dir().join(format!("crowdweb-routing-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = IngestConfig::default();
    config.preprocessor = config.preprocessor.min_active_days(20);
    config.shards = 4;
    config.wal = Some(WalConfig::new(&dir));
    let records;
    {
        let engine = ShardedIngestEngine::open(base(), config.clone()).unwrap();
        records = shifted_records(engine.snapshot().dataset(), 16);
        engine.submit(records.clone()).unwrap();
        engine.run_epoch().unwrap().unwrap();
    } // crash
    let engine = ShardedIngestEngine::open(base(), config).unwrap();
    for k in 0..engine.shard_count() {
        let shard_config = WalConfig::new(dir.join(format!("shard-{k}")));
        let (_, recovery) = Wal::open(&shard_config).unwrap();
        for entry in &recovery.entries {
            assert_eq!(
                shard_of(entry.record.user, engine.shard_count()),
                k,
                "entry seq {} persisted on the wrong shard",
                entry.seq
            );
        }
    }
    // And the engine still has every record: the next batch's sequence
    // numbers continue after the replayed tail.
    let receipt = engine.submit(records).unwrap();
    assert_eq!(receipt.first_seq, 17);
    std::fs::remove_dir_all(&dir).unwrap();
}
