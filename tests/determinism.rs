//! Reproducibility: every stage of the system is deterministic in the
//! seed, end to end — the property that makes the benchmark numbers
//! meaningful.

use crowdweb::prelude::*;

fn full_run(seed: u64) -> (usize, Vec<usize>, Vec<(u64, usize)>) {
    let dataset = SynthConfig::small(seed).generate().unwrap();
    let prepared = Preprocessor::new()
        .min_active_days(20)
        .prepare(&dataset)
        .unwrap();
    let patterns = PatternMiner::new(0.15)
        .unwrap()
        .detect_all(&prepared)
        .unwrap();
    let grid = MicrocellGrid::new(BoundingBox::NYC, 20, 20).unwrap();
    let model = CrowdBuilder::new(&dataset, &prepared)
        .build(&patterns, grid)
        .unwrap();
    let snapshot = model.snapshot_at_hour(9).unwrap();
    (
        dataset.len(),
        patterns.iter().map(|p| p.pattern_count()).collect(),
        snapshot
            .busiest_cells()
            .into_iter()
            .map(|(c, n)| (c.0, n))
            .collect(),
    )
}

#[test]
fn identical_seeds_identical_everything() {
    let a = full_run(1234);
    let b = full_run(1234);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = full_run(1234);
    let b = full_run(4321);
    assert_ne!(a, b);
}

#[test]
fn svg_outputs_are_reproducible() {
    let render = |seed: u64| {
        let dataset = SynthConfig::small(seed).generate().unwrap();
        let prepared = Preprocessor::new()
            .min_active_days(20)
            .prepare(&dataset)
            .unwrap();
        let patterns = PatternMiner::new(0.15)
            .unwrap()
            .detect_all(&prepared)
            .unwrap();
        let grid = MicrocellGrid::new(BoundingBox::NYC, 20, 20).unwrap();
        let model = CrowdBuilder::new(&dataset, &prepared)
            .build(&patterns, grid.clone())
            .unwrap();
        crowdweb::viz::CityMap::new(&grid).render(&model.snapshot_at_hour(9).unwrap())
    };
    assert_eq!(render(7), render(7));
}

/// The tentpole guarantee of the shared execution engine: a parallel
/// run is *byte-identical* to a sequential one, all the way through
/// mined patterns and the synchronized crowd model.
#[test]
fn parallel_pipeline_is_byte_identical_to_sequential() {
    let serialize = |parallelism: Parallelism| {
        let dataset = SynthConfig::small(1234).generate().unwrap();
        let out = PipelineDriver::new(0.15)
            .unwrap()
            .preprocessor(Preprocessor::new().min_active_days(20))
            .parallelism(parallelism)
            .run(&dataset)
            .unwrap();
        (
            serde_json::to_string(&out.patterns).unwrap(),
            serde_json::to_string(&out.crowd).unwrap(),
        )
    };
    let sequential = serialize(Parallelism::Sequential);
    for parallelism in [
        Parallelism::Threads(2),
        Parallelism::Threads(4),
        Parallelism::Auto,
    ] {
        assert_eq!(sequential, serialize(parallelism), "{parallelism:?}");
    }
}

#[test]
fn json_api_is_reproducible() {
    let body = |seed: u64| {
        let dataset = SynthConfig::small(seed).users(25).generate().unwrap();
        let state = AppState::build(dataset, 20).unwrap();
        let router = crowdweb::server::api::build_router();
        let req =
            crowdweb::server::Request::read_from("GET /api/users HTTP/1.1\r\n\r\n".as_bytes())
                .unwrap();
        String::from_utf8(router.route(&state, &req).into_body_bytes()).unwrap()
    };
    assert_eq!(body(5), body(5));
}
