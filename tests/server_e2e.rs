//! End-to-end platform test: a real server over TCP, every endpoint
//! family exercised the way the demo's browser front-end uses them.

use crowdweb::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;

struct Running {
    addr: SocketAddr,
}

fn server() -> &'static Running {
    static SERVER: OnceLock<Running> = OnceLock::new();
    SERVER.get_or_init(|| {
        let dataset = SynthConfig::small(71).generate().unwrap();
        let state = AppState::build(dataset, 20).unwrap();
        let (addr, _handle, _join) = Server::bind("127.0.0.1:0", state).unwrap().spawn();
        Running { addr }
    })
}

fn request(raw: String) -> (u16, String) {
    let mut stream = TcpStream::connect(server().addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    let code = buf
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let (head, body) = buf.split_once("\r\n\r\n").unwrap_or((buf.as_str(), ""));
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        decode_chunked(body)
    } else {
        body.to_owned()
    };
    (code, body)
}

/// Decodes an HTTP/1.1 chunked body (the streamed endpoints — crowd
/// map, geojson, tiles, export — frame with `Transfer-Encoding:
/// chunked` instead of `Content-Length`).
fn decode_chunked(mut rest: &str) -> String {
    let mut out = String::new();
    while let Some((size_line, tail)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..]; // past the chunk data and its CRLF
    }
    out
}

fn get(path: &str) -> (u16, String) {
    // One connection per request, framed by EOF — so opt out of the
    // server's default keep-alive.
    request(format!(
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    ))
}

#[test]
fn frontend_and_stats() {
    let (code, body) = get("/");
    assert_eq!(code, 200);
    assert!(body.contains("CrowdWeb"));
    let (code, body) = get("/api/stats");
    assert_eq!(code, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(v["total_checkins"].as_u64().unwrap() > 0);
    assert!(v["filtered_users"].as_u64().unwrap() > 0);
}

#[test]
fn user_pattern_and_network_flow() {
    // The canonical v1 listing is paginated: {"total": N, "items": [...]}.
    let (code, body) = get("/api/v1/users");
    assert_eq!(code, 200);
    let page: serde_json::Value = serde_json::from_str(&body).unwrap();
    let users = page["items"].as_array().unwrap();
    assert!(!users.is_empty());
    assert!(page["total"].as_u64().unwrap() as usize >= users.len());
    let uid = users[0]["user"].as_u64().unwrap();

    // The legacy alias serves the identical body.
    let (code, alias_body) = get("/api/users");
    assert_eq!(code, 200);
    assert_eq!(body, alias_body);

    let (code, body) = get(&format!("/api/v1/patterns/{uid}"));
    assert_eq!(code, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["user"].as_u64().unwrap(), uid);

    let (code, body) = get(&format!("/api/v1/network/{uid}"));
    assert_eq!(code, 200);
    assert!(body.starts_with("<svg"));
}

#[test]
fn crowd_views_across_hours() {
    let (code, body) = get("/api/crowd?hour=9");
    assert_eq!(code, 200);
    let morning: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(morning["window"], "9-10 am");

    let (code, body) = get("/api/crowd?hour=21");
    assert_eq!(code, 200);
    let night: serde_json::Value = serde_json::from_str(&body).unwrap();
    // Figures 3 vs 4: the distribution changes with the window.
    assert_ne!(morning["cells"], night["cells"]);

    let (code, body) = get("/api/crowd/map?hour=9");
    assert_eq!(code, 200);
    assert!(body.starts_with("<svg"));

    let (code, body) = get("/api/crowd/geojson?hour=9");
    assert_eq!(code, 200);
    assert!(body.contains("FeatureCollection"));

    let (code, _) = get("/api/crowd/flows?from=9&to=10");
    assert_eq!(code, 200);
}

#[test]
fn figures_are_served() {
    for fig in ["fig5", "fig6", "fig7", "fig8"] {
        let (code, body) = get(&format!("/api/figures/{fig}"));
        assert_eq!(code, 200, "{fig}");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["figure"], fig);
        let (code, body) = get(&format!("/api/figures/{fig}/svg"));
        assert_eq!(code, 200);
        assert!(body.starts_with("<svg"));
    }
}

#[test]
fn visitor_upload_end_to_end() {
    // The booth feature: a visitor shares their history, the platform
    // mines and returns their patterns.
    let mut tsv = String::new();
    for day in 1..=5 {
        tsv.push_str(&format!(
            "500\thome\tx\tHome (private)\t40.73\t-73.99\t-240\tSun Apr {day:02} 11:00:00 +0000 2012\n"
        ));
        tsv.push_str(&format!(
            "500\tcafe{day}\tx\tCoffee Shop\t40.74\t-73.98\t-240\tSun Apr {day:02} 17:00:00 +0000 2012\n"
        ));
    }
    let (code, body) = request(format!(
        "POST /api/upload HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{tsv}",
        tsv.len()
    ));
    assert_eq!(code, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["checkins"].as_u64().unwrap(), 10);
    // The flexible coffee habit (5 different cafés) must be mined as a
    // single Eatery pattern thanks to place abstraction.
    let patterns = v["patterns"][0]["patterns"].as_array().unwrap();
    assert!(
        patterns.iter().any(|p| p["items"]
            .as_array()
            .unwrap()
            .iter()
            .any(|i| i.as_str().unwrap().contains("Eatery"))),
        "{body}"
    );

    let (code, _) = get("/api/upload/last");
    assert_eq!(code, 200);
}

/// The ISSUE acceptance criterion, end to end over real TCP: after 20
/// ingest epochs against a 16-deep history, `GET /api/v1/crowd?epoch=N`
/// returns bytes identical to what `GET /api/v1/crowd` returned when
/// epoch `N` was latest, for every retained epoch — and evicted epochs
/// are a 404 `unknown-epoch` envelope. Runs on its own server so the
/// epoch churn never races the read-only tests above.
#[test]
fn time_travel_replays_the_live_crowd_byte_identically_over_tcp() {
    const EPOCHS: usize = 20;
    const DEPTH: usize = 16;
    let dataset = SynthConfig::small(77).generate().unwrap();
    let state = AppState::build(dataset, 20).unwrap();
    assert_eq!(state.engine().history().capacity(), DEPTH);
    // Pin venue/user rows to submit against before the server takes
    // ownership of the state.
    let rows: Vec<(u32, String, f64, f64)> = {
        let snap = state.snapshot();
        snap.dataset()
            .checkins()
            .iter()
            .step_by(29)
            .take(EPOCHS)
            .map(|c| {
                let v = snap.dataset().venue(c.venue()).unwrap();
                (
                    c.user().raw(),
                    v.name().to_owned(),
                    v.location().lat(),
                    v.location().lon(),
                )
            })
            .collect()
    };
    let (addr, _handle, _join) = Server::bind("127.0.0.1:0", state).unwrap().spawn();
    let send = |raw: String| -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        let code = buf
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        (code, buf.split("\r\n\r\n").nth(1).unwrap_or("").to_owned())
    };
    let get = |path: &str| {
        send(format!(
            "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        ))
    };
    let post = |path: &str, body: &str| {
        send(format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ))
    };

    // Capture the live crowd body at every epoch as it is published.
    let mut published = vec![get("/api/v1/crowd").1];
    for (step, (user, venue, lat, lon)) in rows.iter().enumerate() {
        let json = format!(
            "{{\"user\":{user},\"venue\":{},\"category\":\"Office\",\"lat\":{lat},\"lon\":{lon},\
             \"tz_offset_minutes\":-240,\"time\":\"Tue Apr 03 {:02}:00:00 +0000 2012\"}}",
            serde_json::to_string(venue).unwrap(),
            9 + step % 13,
        );
        let (code, body) = post("/api/v1/checkins", &json);
        assert_eq!(code, 200, "submit {step}: {body}");
        let (code, body) = post("/api/v1/ingest/epoch", "");
        assert_eq!(code, 200, "epoch {step}: {body}");
        assert!(body.contains("\"ran\":true"), "epoch {step}: {body}");
        published.push(get("/api/v1/crowd").1);
    }

    // Epochs 5..=20 are retained (16-deep ring), 0..=4 were evicted.
    for (epoch, want) in published.iter().enumerate() {
        let (code, body) = get(&format!("/api/v1/crowd?epoch={epoch}"));
        if epoch + DEPTH > EPOCHS {
            assert_eq!(code, 200, "epoch {epoch}: {body}");
            assert_eq!(&body, want, "epoch {epoch} must replay byte-identically");
        } else {
            assert_eq!(code, 404, "evicted epoch {epoch}: {body}");
            let v: serde_json::Value = serde_json::from_str(&body).unwrap();
            assert_eq!(v["error"]["code"].as_str(), Some("unknown-epoch"));
        }
    }

    // The listing agrees with the replayable range.
    let (code, body) = get("/api/v1/epochs");
    assert_eq!(code, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["latest"].as_u64(), Some(EPOCHS as u64));
    let epochs = v["epochs"].as_array().unwrap();
    assert_eq!(epochs.len(), DEPTH);
    assert_eq!(
        epochs[0]["epoch"].as_u64(),
        Some((EPOCHS - DEPTH + 1) as u64)
    );
    assert_eq!(epochs[0]["kind"], "full");
    // Health reports the deepened ring.
    let (_, body) = get("/api/v1/healthz");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["history_depth"].as_u64(), Some(DEPTH as u64));
    assert_eq!(v["epoch"].as_u64(), Some(EPOCHS as u64));
}

#[test]
fn error_paths() {
    // Status codes on both the v1 and legacy spellings…
    for prefix in ["/api/v1", "/api"] {
        assert_eq!(get(&format!("{prefix}/patterns/abc")).0, 400);
        assert_eq!(get(&format!("{prefix}/patterns/99999")).0, 404);
        assert_eq!(get(&format!("{prefix}/crowd?hour=77")).0, 400);
        assert_eq!(get(&format!("{prefix}/figures/fig9")).0, 404);
        assert_eq!(get(&format!("{prefix}/users?limit=0")).0, 400);
    }
    assert_eq!(get("/definitely/not/here").0, 404);
    // …and every error body is the uniform envelope, end to end over
    // real TCP.
    for (path, slug) in [
        ("/api/v1/patterns/abc", "bad-user-id"),
        ("/api/v1/patterns/99999", "unknown-user"),
        ("/api/v1/users?limit=0", "bad-limit"),
        ("/definitely/not/here", "not-found"),
    ] {
        let (_, body) = get(path);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["code"].as_str(), Some(slug), "{path}");
        assert!(v["error"]["status"].as_u64().is_some(), "{path}");
    }
}
