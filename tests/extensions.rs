//! Integration tests for the beyond-demo extensions: entropy profiles,
//! behavioural grouping, hotspots, events, window comparison, pattern
//! matching, and trajectory metrics — all running over the same
//! end-to-end pipeline.

use crowdweb::crowd::{compare_windows, detect_hotspots, HotspotConfig};
use crowdweb::geo::trajectory::radius_of_gyration_m;
use crowdweb::mobility::{group_users, pattern_cosine, predictability_profile};
use crowdweb::prelude::*;
use crowdweb::seqmine::matching_databases;
use crowdweb::synth::CityEvent;

fn pipeline() -> (
    Dataset,
    Prepared,
    Vec<UserPatterns>,
    crowdweb::crowd::CrowdModel,
) {
    let dataset = SynthConfig::small(321)
        .users(60)
        .event(CityEvent {
            name: "arena show".into(),
            day_offset: 18,
            hour: 20,
            attendance: 0.8,
        })
        .generate()
        .unwrap();
    let prepared = Preprocessor::new()
        .min_active_days(20)
        .prepare(&dataset)
        .unwrap();
    let patterns = PatternMiner::new(0.15)
        .unwrap()
        .detect_all(&prepared)
        .unwrap();
    let grid = MicrocellGrid::new(BoundingBox::NYC, 20, 20).unwrap();
    let model = CrowdBuilder::new(&dataset, &prepared)
        .build(&patterns, grid)
        .unwrap();
    (dataset, prepared, patterns, model)
}

#[test]
fn routine_agents_are_highly_predictable() {
    let (_, prepared, _, _) = pipeline();
    let mut profiles: Vec<f64> = prepared
        .seqdb()
        .views()
        .map(|v| predictability_profile(&v.decode()).max_predictability)
        .collect();
    profiles.sort_by(f64::total_cmp);
    let median = profiles[profiles.len() / 2];
    // Song et al. report ~93% for real humans; synthetic routine agents
    // over the 9-kind alphabet should be comfortably predictable too.
    assert!(median > 0.5, "median predictability {median}");
    for pi in &profiles {
        assert!((0.0..=1.0).contains(pi));
    }
}

#[test]
fn entropy_hierarchy_holds_per_user() {
    let (_, prepared, _, _) = pipeline();
    for view in prepared.seqdb().views().take(15) {
        let p = predictability_profile(&view.decode());
        assert!(
            p.uncorrelated_entropy <= p.random_entropy + 1e-9,
            "user {}: S_unc {} > S_rand {}",
            view.user(),
            p.uncorrelated_entropy,
            p.random_entropy
        );
    }
}

#[test]
fn similarity_is_symmetric_and_grouping_partitions() {
    let (_, _, patterns, _) = pipeline();
    for i in (0..patterns.len().min(10)).step_by(2) {
        for j in 0..patterns.len().min(10) {
            let ab = pattern_cosine(&patterns[i], &patterns[j]);
            let ba = pattern_cosine(&patterns[j], &patterns[i]);
            assert!((ab - ba).abs() < 1e-12);
            assert!((0.0..=1.0 + 1e-9).contains(&ab));
        }
    }
    let groups = group_users(&patterns, 0.8);
    let total: usize = groups.iter().map(|g| g.len()).sum();
    assert_eq!(total, patterns.len());
}

#[test]
fn event_creates_detectable_evening_checkin_mass() {
    let (dataset, _, _, _) = pipeline();
    // On the event day (2012-04-21, offset 18 from 04-03), hour 20
    // should hold far more check-ins at the event venue than typical.
    let event_date = crowdweb::dataset::CivilDate::new(2012, 4, 21).unwrap();
    let mut event_day_hour20 = 0usize;
    let mut other_days_hour20 = 0usize;
    let mut other_days = 0usize;
    for c in dataset.checkins() {
        let local = c.local_time();
        if local.hour == 20 {
            if local.date == event_date {
                event_day_hour20 += 1;
            } else {
                other_days_hour20 += 1;
                other_days = other_days.max(1);
            }
        }
    }
    let _ = other_days;
    // 91 days total: average hour-20 mass per non-event day.
    let avg_other = other_days_hour20 as f64 / 90.0;
    assert!(
        event_day_hour20 as f64 > avg_other * 3.0,
        "event day {event_day_hour20} vs avg {avg_other:.1}"
    );
}

#[test]
fn hotspots_exist_and_reference_valid_windows() {
    let (_, _, _, model) = pipeline();
    let hotspots = detect_hotspots(&model, &HotspotConfig::default()).unwrap();
    for h in &hotspots {
        assert!(h.window < model.windows().len());
        assert!(h.count >= 3);
        assert!(h.z_score >= 1.5);
        assert!(model.grid().position(h.cell).is_some());
    }
}

#[test]
fn window_comparison_reflects_crowd_movement() {
    let (_, _, _, model) = pipeline();
    let cmp = compare_windows(&model, 9, 19).unwrap();
    assert_eq!(cmp.before_window, "9-10 am");
    assert_eq!(cmp.after_window, "7-8 pm");
    // The crowd demonstrably moves (Fig 3 vs Fig 4).
    assert!(cmp.churn() > 0, "no churn between morning and evening");
    // Deltas are consistent with the totals.
    let before_sum: usize = cmp.deltas.iter().map(|d| d.before).sum();
    let after_sum: usize = cmp.deltas.iter().map(|d| d.after).sum();
    assert_eq!(before_sum, cmp.before_total);
    assert_eq!(after_sum, cmp.after_total);
}

#[test]
fn pattern_matcher_finds_the_pattern_owners() {
    let (_, prepared, patterns, _) = pipeline();
    // Take a mined pattern from some user and confirm the matcher
    // reports at least that user's own database.
    let owner = patterns
        .iter()
        .find(|u| !u.patterns.is_empty())
        .expect("some user has patterns");
    let pattern = &owner.patterns.patterns[0];
    let decoded: Vec<Vec<Vec<crowdweb::prep::SeqItem>>> =
        prepared.seqdb().views().map(|v| v.decode()).collect();
    let dbs: Vec<&Vec<Vec<crowdweb::prep::SeqItem>>> = decoded.iter().collect();
    let owner_idx = prepared
        .seqdb()
        .user_ids()
        .iter()
        .position(|&u| u == owner.user)
        .unwrap();
    let hits = matching_databases(&pattern.items, &dbs, 0.15);
    assert!(
        hits.iter()
            .any(|&(i, sup)| i == owner_idx && sup == pattern.support),
        "owner not matched for {:?}",
        pattern.items
    );
}

#[test]
fn radius_of_gyration_is_city_scale() {
    let (dataset, _, _, _) = pipeline();
    let mut radii = Vec::new();
    for user in dataset.user_ids().take(20) {
        let points: Vec<LatLon> = dataset
            .checkins_of(user)
            .iter()
            .filter_map(|c| dataset.venue(c.venue()).map(|v| v.location()))
            .collect();
        let rg = radius_of_gyration_m(&points);
        radii.push(rg);
        // Inside a city: somewhere between 100 m and 60 km.
        assert!(rg > 100.0 && rg < 60_000.0, "rg {rg}");
    }
    // Users differ in territory size.
    let min = radii.iter().copied().fold(f64::INFINITY, f64::min);
    let max = radii.iter().copied().fold(0.0f64, f64::max);
    assert!(max > min * 1.2, "degenerate radii: {min}..{max}");
}
