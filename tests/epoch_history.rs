//! Determinism guarantees of the epoch history store: for every epoch
//! retained in the ring, `materialize(N)` — nearest full checkpoint
//! plus the replayed delta chain — must be byte-identical to a cold
//! pipeline rebuild over the first `N` epochs' merged dataset, under
//! any parallelism policy and any shard count, and eviction must only
//! ever narrow the retained range from the oldest end.

use crowdweb::dataset::MergeRecord;
use crowdweb::ingest::{IngestConfig, IngestEngine, ShardedIngestEngine};
use crowdweb::prelude::*;

fn config(parallelism: Parallelism) -> IngestConfig {
    let mut c = IngestConfig::default();
    c.preprocessor = c.preprocessor.min_active_days(20);
    c.parallelism = parallelism;
    // A short cadence so a handful of epochs exercises both
    // representations: full checkpoints and delta chains.
    c.checkpoint_every = 3;
    c
}

/// Clones every 37th check-in, shifted in time, as a merge batch.
fn shifted_records(d: &Dataset, shift_secs: i64, n: usize) -> Vec<MergeRecord> {
    d.checkins()
        .iter()
        .step_by(37)
        .take(n)
        .map(|c| {
            let v = d.venue(c.venue()).unwrap();
            MergeRecord {
                user: c.user(),
                venue_key: v.name().to_owned(),
                category: "Office".to_owned(),
                location: v.location(),
                tz_offset_minutes: c.tz_offset_minutes(),
                time: Timestamp::from_unix_seconds(c.time().unix_seconds() + shift_secs),
            }
        })
        .collect()
}

/// One distinct batch per epoch: different shifts touch different
/// placements, so consecutive epochs genuinely differ.
fn batches(base: &Dataset, epochs: usize) -> Vec<Vec<MergeRecord>> {
    (0..epochs)
        .map(|i| shifted_records(base, 1800 * (i as i64 + 1), 12))
        .collect()
}

fn cold(dataset: &Dataset, parallelism: Parallelism) -> PipelineOutput {
    PipelineDriver::new(0.15)
        .unwrap()
        .preprocessor(Preprocessor::new().min_active_days(20))
        .windows(TimeWindows::hourly())
        .grid(BoundingBox::NYC, 20, 20)
        .parallelism(parallelism)
        .run(dataset)
        .unwrap()
}

fn crowd_json(model: &CrowdModel) -> String {
    serde_json::to_string(model).unwrap()
}

#[test]
fn materialized_epochs_match_cold_rebuilds() {
    const EPOCHS: usize = 6;
    for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
        let base = SynthConfig::small(71).generate().unwrap();
        let batches = batches(&base, EPOCHS);

        let engine = IngestEngine::open(base.clone(), config(parallelism)).unwrap();
        for batch in &batches {
            engine.submit(batch.clone()).unwrap();
            engine.run_epoch().unwrap().expect("non-empty queue");
        }
        assert_eq!(engine.epoch(), EPOCHS as u64);
        assert_eq!(engine.history().retained(), (0, EPOCHS as u64));

        // Epoch N == a cold rebuild over base + the first N batches.
        let mut applied: Vec<MergeRecord> = Vec::new();
        for n in 0..=EPOCHS {
            if n > 0 {
                applied.extend(batches[n - 1].iter().cloned());
            }
            let merged = base.merge_records(&applied).unwrap();
            let out = cold(&merged, parallelism);
            let got = engine.crowd_at(n as u64).expect("epoch retained");
            assert_eq!(
                crowd_json(&got),
                crowd_json(&out.crowd),
                "{parallelism:?}: epoch {n} diverged from its cold rebuild"
            );
        }
        // The newest materialization IS the live model.
        assert_eq!(
            crowd_json(&engine.crowd_at(EPOCHS as u64).unwrap()),
            crowd_json(engine.snapshot().crowd())
        );
    }
}

#[test]
fn sharded_history_matches_unsharded_and_cold_rebuilds() {
    const EPOCHS: usize = 5;
    for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
        let base = SynthConfig::small(71).generate().unwrap();
        let batches = batches(&base, EPOCHS);

        let mut engines = Vec::new();
        for shards in [1usize, 4] {
            let mut cfg = config(parallelism);
            cfg.shards = shards;
            let engine = ShardedIngestEngine::open(base.clone(), cfg).unwrap();
            for batch in &batches {
                engine.submit(batch.clone()).unwrap();
                engine.run_epoch().unwrap().expect("non-empty queue");
            }
            engines.push((shards, engine));
        }

        let mut applied: Vec<MergeRecord> = Vec::new();
        for n in 0..=EPOCHS {
            if n > 0 {
                applied.extend(batches[n - 1].iter().cloned());
            }
            let merged = base.merge_records(&applied).unwrap();
            let want = crowd_json(&cold(&merged, parallelism).crowd);
            for (shards, engine) in &engines {
                let got = engine.crowd_at(n as u64).expect("epoch retained");
                assert_eq!(
                    crowd_json(&got),
                    want,
                    "{parallelism:?}: epoch {n} diverged at {shards} shards"
                );
            }
        }
    }
}

#[test]
fn eviction_narrows_retention_from_the_oldest_end_only() {
    const EPOCHS: u64 = 9;
    let base = SynthConfig::small(72).generate().unwrap();
    let batches = batches(&base, EPOCHS as usize);
    let mut cfg = config(Parallelism::Sequential);
    cfg.history_depth = 4;
    let engine = IngestEngine::open(base, cfg).unwrap();

    // Capture each epoch's model as it is published.
    let mut published = vec![crowd_json(engine.snapshot().crowd())];
    for batch in &batches {
        engine.submit(batch.clone()).unwrap();
        engine.run_epoch().unwrap().expect("non-empty queue");
        published.push(crowd_json(engine.snapshot().crowd()));
    }

    assert_eq!(engine.history().retained(), (EPOCHS - 3, EPOCHS));
    let listing = engine.epochs();
    assert_eq!(listing.len(), 4);
    // The promote-on-evict fold keeps the front a checkpoint even when
    // the entry that fell out was the only full one in its chain.
    assert_eq!(listing[0].kind, "full");
    for n in 0..=EPOCHS {
        match engine.crowd_at(n) {
            Some(got) if n >= EPOCHS - 3 => assert_eq!(
                crowd_json(&got),
                published[n as usize],
                "retained epoch {n} must replay to its published model"
            ),
            None if n < EPOCHS - 3 => {}
            other => panic!("epoch {n}: unexpected retention {:?}", other.is_some()),
        }
    }
}
