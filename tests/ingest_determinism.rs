//! End-to-end guarantees of the live ingestion subsystem: an epoch
//! snapshot is byte-identical to a cold pipeline build over the merged
//! dataset (under any parallelism policy), epochs chain, and WAL
//! recovery — including a torn final record — reaches the same state.

use crowdweb::dataset::MergeRecord;
use crowdweb::ingest::{shard_of, IngestConfig, IngestEngine, ShardedIngestEngine, WalConfig};
use crowdweb::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "crowdweb-ingest-e2e-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(parallelism: Parallelism) -> IngestConfig {
    let mut c = IngestConfig::default();
    c.preprocessor = c.preprocessor.min_active_days(20);
    c.parallelism = parallelism;
    c
}

/// Clones every 37th check-in, shifted in time, as a merge batch.
fn shifted_records(d: &Dataset, shift_secs: i64, n: usize) -> Vec<MergeRecord> {
    d.checkins()
        .iter()
        .step_by(37)
        .take(n)
        .map(|c| {
            let v = d.venue(c.venue()).unwrap();
            MergeRecord {
                user: c.user(),
                venue_key: v.name().to_owned(),
                category: "Office".to_owned(),
                location: v.location(),
                tz_offset_minutes: c.tz_offset_minutes(),
                time: Timestamp::from_unix_seconds(c.time().unix_seconds() + shift_secs),
            }
        })
        .collect()
}

fn cold(dataset: &Dataset, parallelism: Parallelism) -> PipelineOutput {
    PipelineDriver::new(0.15)
        .unwrap()
        .preprocessor(Preprocessor::new().min_active_days(20))
        .windows(TimeWindows::hourly())
        .grid(BoundingBox::NYC, 20, 20)
        .parallelism(parallelism)
        .run(dataset)
        .unwrap()
}

fn crowd_json(model: &CrowdModel) -> String {
    serde_json::to_string(model).unwrap()
}

#[test]
fn epoch_snapshot_is_byte_identical_to_cold_build() {
    for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
        let base = SynthConfig::small(71).generate().unwrap();
        let records = shifted_records(&base, 3600, 40);
        let merged = base.merge_records(&records).unwrap();

        let engine = IngestEngine::open(base, config(parallelism)).unwrap();
        engine.submit(records).unwrap();
        engine.run_epoch().unwrap().expect("non-empty queue");
        let snap = engine.snapshot();

        let out = cold(&merged, parallelism);
        assert_eq!(
            crowd_json(snap.crowd()),
            crowd_json(&out.crowd),
            "{parallelism:?} crowd"
        );
        assert_eq!(
            serde_json::to_string(snap.patterns()).unwrap(),
            serde_json::to_string(&out.patterns).unwrap(),
            "{parallelism:?} patterns"
        );
    }
}

#[test]
fn sharded_snapshots_match_unsharded_and_cold_build() {
    // The tentpole determinism criterion: shards(4) == shards(1) ==
    // cold rebuild, byte for byte, under Sequential and Threads(4).
    for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
        let base = SynthConfig::small(71).generate().unwrap();
        let records = shifted_records(&base, 3600, 40);
        let merged = base.merge_records(&records).unwrap();
        let out = cold(&merged, parallelism);

        let mut snapshots = Vec::new();
        for shards in [4usize, 1] {
            let mut cfg = config(parallelism);
            cfg.shards = shards;
            let engine = ShardedIngestEngine::open(base.clone(), cfg).unwrap();
            assert_eq!(engine.shard_count(), shards);
            engine.submit(records.clone()).unwrap();
            engine.run_epoch().unwrap().expect("non-empty queue");
            snapshots.push((shards, engine.snapshot()));
        }
        for (shards, snap) in &snapshots {
            assert_eq!(
                crowd_json(snap.crowd()),
                crowd_json(&out.crowd),
                "{parallelism:?} crowd diverged from cold build at {shards} shards"
            );
            assert_eq!(
                serde_json::to_string(snap.patterns()).unwrap(),
                serde_json::to_string(&out.patterns).unwrap(),
                "{parallelism:?} patterns diverged from cold build at {shards} shards"
            );
        }
    }
}

#[test]
fn metrics_instrumentation_never_perturbs_epoch_output() {
    // Observability must stay out of the determinism story: an engine
    // with a metrics registry injected publishes byte-identical
    // snapshots to one without, while the registry fills up.
    let base = SynthConfig::small(76).generate().unwrap();
    let records = shifted_records(&base, 3600, 30);

    let registry = crowdweb::obs::MetricsRegistry::new();
    let mut observed_cfg = config(Parallelism::Threads(4));
    observed_cfg.metrics = Some(registry.clone());
    let observed = IngestEngine::open(base.clone(), observed_cfg).unwrap();
    observed.submit(records.clone()).unwrap();
    observed.run_epoch().unwrap().expect("non-empty queue");

    let plain = IngestEngine::open(base, config(Parallelism::Threads(4))).unwrap();
    plain.submit(records).unwrap();
    plain.run_epoch().unwrap().expect("non-empty queue");

    assert_eq!(
        crowd_json(observed.snapshot().crowd()),
        crowd_json(plain.snapshot().crowd()),
        "metrics injection changed the crowd model"
    );
    assert_eq!(
        serde_json::to_string(observed.snapshot().patterns()).unwrap(),
        serde_json::to_string(plain.snapshot().patterns()).unwrap(),
        "metrics injection changed mined patterns"
    );
    // And the registry actually observed the run.
    assert!(
        registry
            .counter_value("crowdweb_ingest_accepted_total", &[])
            .unwrap_or(0)
            > 0
    );
    assert!(registry
        .render()
        .contains("crowdweb_pipeline_stage_seconds_bucket"));
}

#[test]
fn chained_epochs_match_one_shot_cold_build() {
    let base = SynthConfig::small(72).generate().unwrap();
    let first = shifted_records(&base, 1800, 25);
    let second = shifted_records(&base, 7200, 25);
    let mut all = first.clone();
    all.extend(second.iter().cloned());
    let merged = base.merge_records(&all).unwrap();

    let engine = IngestEngine::open(base, config(Parallelism::Sequential)).unwrap();
    engine.submit(first).unwrap();
    engine.run_epoch().unwrap().expect("first epoch");
    engine.submit(second).unwrap();
    let report = engine.run_epoch().unwrap().expect("second epoch");
    assert_eq!(report.epoch, 2);

    let out = cold(&merged, Parallelism::Sequential);
    assert_eq!(
        crowd_json(engine.snapshot().crowd()),
        crowd_json(&out.crowd)
    );
}

#[test]
fn app_state_cold_build_matches_engine_epoch() {
    let base = SynthConfig::small(75).generate().unwrap();
    let records = shifted_records(&base, 3600, 30);
    let merged = base.merge_records(&records).unwrap();

    let state = AppState::build(base, 20).unwrap();
    state.engine().submit(records).unwrap();
    state
        .engine()
        .run_epoch()
        .unwrap()
        .expect("non-empty queue");

    let cold_state = AppState::build(merged, 20).unwrap();
    assert_eq!(
        crowd_json(state.snapshot().crowd()),
        crowd_json(cold_state.snapshot().crowd())
    );
}

#[test]
fn wal_replay_after_crash_reaches_cold_build_state() {
    let dir = temp_dir("crash");
    let base = SynthConfig::small(73).generate().unwrap();
    let applied = shifted_records(&base, 3600, 20);
    let tail = shifted_records(&base, 10800, 15);
    let mut all = applied.clone();
    all.extend(tail.iter().cloned());
    let merged = base.merge_records(&all).unwrap();

    let mut cfg = config(Parallelism::Sequential);
    cfg.wal = Some(WalConfig::new(&dir));
    let engine = IngestEngine::open(base.clone(), cfg.clone()).unwrap();
    engine.submit(applied).unwrap();
    engine.run_epoch().unwrap().expect("first epoch");
    engine.submit(tail).unwrap();
    // Crash before the second epoch: the tail lives only in the WAL.
    drop(engine);

    let engine = IngestEngine::open(base, cfg).unwrap();
    let out = cold(&merged, Parallelism::Sequential);
    assert_eq!(
        crowd_json(engine.snapshot().crowd()),
        crowd_json(&out.crowd)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_shard_tail_leaves_other_shards_intact() {
    // A torn tail in one shard's WAL must lose only that shard's final
    // record: the other shards replay fully — including records with
    // HIGHER sequence numbers than the torn one — and the reconciled
    // global sequence continues past everything that survived.
    const SHARDS: usize = 4;
    let dir = temp_dir("torn-shard");
    let base = SynthConfig::small(74).generate().unwrap();
    let records = shifted_records(&base, 3600, 24);
    let mut cfg = config(Parallelism::Sequential);
    cfg.shards = SHARDS;
    cfg.wal = Some(WalConfig::new(&dir));
    let engine = ShardedIngestEngine::open(base.clone(), cfg.clone()).unwrap();
    engine.submit(records.clone()).unwrap();
    // Crash before any epoch: everything lives only in the shard WALs.
    drop(engine);

    // Tear a shard that does NOT hold the globally last record, so the
    // survivors include sequence numbers above the torn one.
    let last_index_by_shard =
        |k: usize| records.iter().rposition(|r| shard_of(r.user, SHARDS) == k);
    let torn_shard = (0..SHARDS)
        .find(|&k| last_index_by_shard(k).is_some_and(|i| i < records.len() - 1))
        .expect("more than one shard holds records");
    let lost_index = last_index_by_shard(torn_shard).unwrap();
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir.join(format!("shard-{torn_shard}")))
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    segs.sort();
    let last = segs.last().expect("a live segment on the torn shard");
    let len = std::fs::metadata(last).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(last).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);

    let engine = ShardedIngestEngine::open(base.clone(), cfg).unwrap();
    let survivors: Vec<MergeRecord> = records
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != lost_index)
        .map(|(_, r)| r.clone())
        .collect();
    let merged = base.merge_records(&survivors).unwrap();
    let out = cold(&merged, Parallelism::Sequential);
    assert_eq!(
        crowd_json(engine.snapshot().crowd()),
        crowd_json(&out.crowd),
        "recovery must keep every record except the torn shard's tail"
    );
    // The other shards were not rewound: the globally last record
    // survived, so the next sequence number continues after it.
    let receipt = engine.submit(shifted_records(&base, 7200, 1)).unwrap();
    assert_eq!(receipt.first_seq, records.len() as u64 + 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_tail_recovers_the_intact_prefix() {
    let dir = temp_dir("torn");
    let base = SynthConfig::small(74).generate().unwrap();
    let records = shifted_records(&base, 3600, 12);
    let mut cfg = config(Parallelism::Sequential);
    cfg.wal = Some(WalConfig::new(&dir));
    let engine = IngestEngine::open(base.clone(), cfg.clone()).unwrap();
    engine.submit(records.clone()).unwrap();
    // Crash before any epoch, then tear the final record's frame.
    drop(engine);
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    segs.sort();
    let last = segs.last().expect("a live segment");
    let len = std::fs::metadata(last).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(last).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);

    let engine = IngestEngine::open(base.clone(), cfg).unwrap();
    let merged = base.merge_records(&records[..records.len() - 1]).unwrap();
    let out = cold(&merged, Parallelism::Sequential);
    assert_eq!(
        crowd_json(engine.snapshot().crowd()),
        crowd_json(&out.crowd)
    );
    std::fs::remove_dir_all(&dir).ok();
}
