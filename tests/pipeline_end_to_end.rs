//! Cross-crate integration: the full pipeline from synthesis to crowd
//! aggregation, checking the invariants each stage hands to the next.

use crowdweb::prelude::*;
use std::collections::HashSet;

fn pipeline(
    seed: u64,
) -> (
    Dataset,
    Prepared,
    Vec<UserPatterns>,
    crowdweb::crowd::CrowdModel,
) {
    let dataset = SynthConfig::small(seed).generate().unwrap();
    let prepared = Preprocessor::new()
        .min_active_days(20)
        .prepare(&dataset)
        .unwrap();
    let patterns = PatternMiner::new(0.15)
        .unwrap()
        .detect_all(&prepared)
        .unwrap();
    let grid = MicrocellGrid::new(BoundingBox::NYC, 20, 20).unwrap();
    let model = CrowdBuilder::new(&dataset, &prepared)
        .build(&patterns, grid)
        .unwrap();
    (dataset, prepared, patterns, model)
}

#[test]
fn filtered_users_are_a_subset_of_dataset_users() {
    let (dataset, prepared, _, _) = pipeline(1);
    let all: HashSet<UserId> = dataset.user_ids().collect();
    for u in prepared.users() {
        assert!(all.contains(u));
    }
    assert!(prepared.user_count() <= dataset.user_count());
}

#[test]
fn every_filtered_user_has_enough_active_days() {
    let (dataset, prepared, _, _) = pipeline(2);
    let filter = ActivityFilter::new(20);
    for &u in prepared.users() {
        assert!(
            filter.active_day_count(&dataset, prepared.window(), u) > 20,
            "user {u} slipped through the filter"
        );
    }
}

#[test]
fn sequences_respect_window_and_ordering() {
    let (_, prepared, _, _) = pipeline(3);
    for view in prepared.seqdb().views() {
        for day in view.decode() {
            assert!(!day.is_empty(), "empty day sequence for {}", view.user());
            for pair in day.windows(2) {
                assert!(
                    pair[0].slot <= pair[1].slot,
                    "items out of slot order for {}",
                    view.user()
                );
                assert_ne!(pair[0], pair[1], "consecutive duplicates must collapse");
            }
        }
    }
}

#[test]
fn pattern_supports_never_exceed_active_days() {
    let (_, _, patterns, _) = pipeline(4);
    for up in &patterns {
        for p in up.patterns.iter() {
            assert!(p.support <= up.active_days, "{:?}", p);
            assert!(p.support >= 1);
            assert!(!p.items.is_empty());
        }
    }
}

#[test]
fn mined_patterns_actually_occur_in_the_sequences() {
    let (_, prepared, patterns, _) = pipeline(5);
    for up in patterns.iter().take(10) {
        let seqs = prepared
            .seqdb()
            .view_of(up.user)
            .expect("mined users come from the seqdb")
            .decode();
        for p in up.patterns.iter() {
            let support = seqs
                .iter()
                .filter(|s| crowdweb::seqmine::contains_subsequence(&p.items, s))
                .count();
            assert_eq!(support, p.support, "user {} pattern {:?}", up.user, p.items);
        }
    }
}

#[test]
fn crowd_placements_come_from_filtered_users_with_patterns() {
    let (_, prepared, patterns, model) = pipeline(6);
    let with_patterns: HashSet<UserId> = patterns
        .iter()
        .filter(|u| !u.patterns.is_empty())
        .map(|u| u.user)
        .collect();
    let filtered: HashSet<UserId> = prepared.users().iter().copied().collect();
    for p in model.placements() {
        assert!(filtered.contains(&p.user));
        assert!(with_patterns.contains(&p.user));
    }
}

#[test]
fn snapshot_totals_equal_placement_counts() {
    let (_, _, _, model) = pipeline(7);
    let frame_total: usize = model
        .animation_frames()
        .iter()
        .map(|f| f.total_users())
        .sum();
    assert_eq!(frame_total, model.placement_count());
    assert!(model.placement_count() > 0);
}

#[test]
fn crowd_distribution_changes_over_the_day() {
    let (_, _, _, model) = pipeline(8);
    let morning = model.snapshot_at_hour(9).unwrap();
    let night = model.snapshot_at_hour(22).unwrap();
    assert_ne!(
        morning.cells, night.cells,
        "the crowd must move between 9 am and 10 pm"
    );
}

#[test]
fn label_space_is_kind_sized() {
    let (dataset, prepared, _, _) = pipeline(9);
    let labeler = crowdweb::prep::Labeler::new(&dataset, prepared.scheme());
    assert_eq!(labeler.label_space(), 9);
    for view in prepared.seqdb().views() {
        for day in view.decode() {
            for item in day {
                assert!((item.label.0 as usize) < 9);
                assert!(item.slot.0 < 12);
            }
        }
    }
}
