//! Integration: a synthetic dataset serialized to the Foursquare TSV
//! format and re-parsed must drive the entire pipeline to identical
//! results — this is what guarantees the real `dataset_TSMC2014_NYC.txt`
//! file drops in unchanged.

use crowdweb::dataset::{tsv, DatasetStats};
use crowdweb::prelude::*;

#[test]
fn stats_survive_tsv_round_trip() {
    let original = SynthConfig::small(41).generate().unwrap();
    let serialized = tsv::to_string(&original);
    let reparsed = tsv::from_str(&serialized).unwrap();

    let a = DatasetStats::compute(&original);
    let b = DatasetStats::compute(&reparsed);
    assert_eq!(a.total_checkins, b.total_checkins);
    assert_eq!(a.user_count, b.user_count);
    // The TSV carries only venues that appear in check-ins, while the
    // generator also registers never-visited venues — compare the
    // visited set.
    let visited: std::collections::HashSet<VenueId> =
        original.checkins().iter().map(|c| c.venue()).collect();
    assert_eq!(visited.len(), b.venue_count);
    assert_eq!(a.mean_records_per_user, b.mean_records_per_user);
    assert_eq!(a.median_records_per_user, b.median_records_per_user);
    assert_eq!(a.monthly_counts, b.monthly_counts);
}

#[test]
fn mined_patterns_survive_tsv_round_trip() {
    let original = SynthConfig::small(42).generate().unwrap();
    let reparsed = tsv::from_str(&tsv::to_string(&original)).unwrap();

    let prep = Preprocessor::new().min_active_days(20);
    let pa = prep.prepare(&original).unwrap();
    let pb = prep.prepare(&reparsed).unwrap();
    assert_eq!(pa.users(), pb.users());
    assert_eq!(pa.window(), pb.window());

    let miner = PatternMiner::new(0.2).unwrap();
    let ma = miner.detect_all(&pa).unwrap();
    let mb = miner.detect_all(&pb).unwrap();
    // Same pattern counts and supports for every user. (Labels are
    // kind-indexed, so they are stable across the round trip too.)
    assert_eq!(ma.len(), mb.len());
    for (a, b) in ma.iter().zip(&mb) {
        assert_eq!(a.user, b.user);
        assert_eq!(a.active_days, b.active_days);
        assert_eq!(a.patterns.patterns, b.patterns.patterns);
    }
}

#[test]
fn tsv_lines_have_eight_columns_and_parse_individually() {
    let d = SynthConfig::small(43).users(5).generate().unwrap();
    let serialized = tsv::to_string(&d);
    let mut lines = 0;
    for line in serialized.lines() {
        assert_eq!(line.split('\t').count(), 8, "bad line: {line}");
        lines += 1;
    }
    assert_eq!(lines, d.len());
}

#[test]
fn file_round_trip_via_disk() {
    let d = SynthConfig::small(44).users(5).generate().unwrap();
    let dir = std::env::temp_dir().join("crowdweb_tsv_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.tsv");
    std::fs::write(&path, tsv::to_string(&d)).unwrap();
    let loaded = tsv::load_path(&path).unwrap();
    assert_eq!(loaded.len(), d.len());
    assert_eq!(loaded.user_count(), d.user_count());
    std::fs::remove_file(&path).ok();
}
