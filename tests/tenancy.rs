//! Multi-city tenancy and sparse-grid guarantees, end to end:
//!
//! - two cities ingest **concurrently** over real TCP without
//!   cross-contaminating each other's snapshots;
//! - per-city WAL roots recover independently after a restart;
//! - a formerly-`GridTooLarge` resolution now builds and serves
//!   `/api/v1/cities/{id}/crowd/map` over TCP;
//! - on such a sparse grid, every retained epoch materializes
//!   byte-identically under Sequential vs Threads(4) and shards(1) vs
//!   shards(4). (Dense-vs-sparse backing equivalence on one grid is
//!   pinned by the `CellStore` proptests in `crowdweb-geo` and the
//!   crowd-model backing test in `crowdweb-crowd`.)

use crowdweb::dataset::MergeRecord;
use crowdweb::ingest::{IngestConfig, ShardedIngestEngine, WalConfig};
use crowdweb::prelude::*;
use crowdweb_server::Server;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "crowdweb-tenancy-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> IngestConfig {
    let mut c = IngestConfig::default();
    c.preprocessor = c.preprocessor.min_active_days(20);
    c
}

/// Clones every 37th check-in, shifted in time, as a merge batch.
fn shifted_records(d: &Dataset, shift_secs: i64, n: usize) -> Vec<MergeRecord> {
    d.checkins()
        .iter()
        .step_by(37)
        .take(n)
        .map(|c| {
            let v = d.venue(c.venue()).unwrap();
            MergeRecord {
                user: c.user(),
                venue_key: v.name().to_owned(),
                category: "Office".to_owned(),
                location: v.location(),
                tz_offset_minutes: c.tz_offset_minutes(),
                time: Timestamp::from_unix_seconds(c.time().unix_seconds() + shift_secs),
            }
        })
        .collect()
}

fn request(addr: SocketAddr, raw: String) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    let code = buf
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let (head, body) = buf.split_once("\r\n\r\n").unwrap_or((buf.as_str(), ""));
    let body = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        decode_chunked(body)
    } else {
        body.to_owned()
    };
    (code, body)
}

/// Decodes an HTTP/1.1 chunked body (streamed endpoints frame with
/// `Transfer-Encoding: chunked` instead of `Content-Length`).
fn decode_chunked(mut rest: &str) -> String {
    let mut out = String::new();
    while let Some((size_line, tail)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..]; // past the chunk data and its CRLF
    }
    out
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// A batch of `n` check-in JSON objects at a city-distinct venue.
/// Every record is unique (distinct user per batch slot) so merge
/// dedup can never shrink the count.
fn checkin_batch(tag: &str, batch: usize, n: usize) -> String {
    let offset = if tag == "nyc" { 10_000 } else { 20_000 };
    let items: Vec<String> = (0..n)
        .map(|i| {
            format!(
                r#"{{"user": {}, "venue": "{tag}-venue-{}", "lat": 40.7, "lon": -74.0,
                     "time": "Tue Apr 03 1{}:00:09 +0000 2012"}}"#,
                offset + batch * 100 + i,
                i % 7,
                i % 10
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn total_checkins(addr: SocketAddr, city: &str) -> u64 {
    let (code, body) = get(addr, &format!("/api/v1/cities/{city}/stats"));
    assert_eq!(code, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    v["total_checkins"].as_u64().unwrap()
}

fn epoch_of(addr: SocketAddr, city: &str) -> u64 {
    let (code, body) = get(addr, &format!("/api/v1/cities/{city}/healthz"));
    assert_eq!(code, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    v["epoch"].as_u64().unwrap()
}

#[test]
fn concurrent_city_ingest_never_cross_contaminates() {
    let nyc = SynthConfig::small(71).generate().unwrap();
    let tokyo = SynthConfig::small(82).generate().unwrap();
    let mut state = AppState::build(nyc, 20).unwrap();
    state.add_city("tokyo", tokyo, config()).unwrap();
    let (addr, _handle, _join) = Server::bind("127.0.0.1:0", state).unwrap().spawn();

    let nyc_before = total_checkins(addr, "nyc");
    let tokyo_before = total_checkins(addr, "tokyo");

    // Two writers hammer their own city at the same time, batch by
    // batch, then publish an epoch each.
    const BATCHES: usize = 8;
    const PER_BATCH: usize = 5;
    std::thread::scope(|scope| {
        for city in ["nyc", "tokyo"] {
            scope.spawn(move || {
                for batch in 0..BATCHES {
                    let (code, body) = post(
                        addr,
                        &format!("/api/v1/cities/{city}/checkins"),
                        &checkin_batch(city, batch, PER_BATCH),
                    );
                    assert_eq!(code, 200, "{city}: {body}");
                }
                let (code, body) = post(addr, &format!("/api/v1/cities/{city}/ingest/epoch"), "");
                assert_eq!(code, 200, "{city}: {body}");
            });
        }
    });

    // Every write landed in its own city — and only there.
    let wrote = (BATCHES * PER_BATCH) as u64;
    assert_eq!(epoch_of(addr, "nyc"), 1);
    assert_eq!(epoch_of(addr, "tokyo"), 1);
    assert_eq!(total_checkins(addr, "nyc"), nyc_before + wrote);
    assert_eq!(total_checkins(addr, "tokyo"), tokyo_before + wrote);

    // The crowd surfaces stay distinct datasets, not one merged blob.
    let (_, nyc_crowd) = get(addr, "/api/v1/cities/nyc/crowd?hour=9");
    let (_, tokyo_crowd) = get(addr, "/api/v1/cities/tokyo/crowd?hour=9");
    assert_ne!(nyc_crowd, tokyo_crowd);
}

#[test]
fn per_city_wal_recovery_replays_independently() {
    let dir = temp_dir("recovery");
    let build = || {
        let mut cfg = config();
        cfg.wal = Some(WalConfig::new(&dir));
        let mut state =
            AppState::with_config(SynthConfig::small(71).generate().unwrap(), cfg).unwrap();
        let mut cfg = config();
        cfg.wal = Some(WalConfig::new(&dir)); // scoped to <dir>/tokyo by add_city
        state
            .add_city("tokyo", SynthConfig::small(82).generate().unwrap(), cfg)
            .unwrap();
        state
    };

    let state = build();
    let nyc_records = shifted_records(state.default_city().snapshot().dataset(), 1800, 25);
    let tokyo_records =
        shifted_records(state.city("tokyo").unwrap().snapshot().dataset(), 7200, 30);
    state.default_city().engine().submit(nyc_records).unwrap();
    state.default_city().engine().run_epoch().unwrap().unwrap();
    let tokyo = state.city("tokyo").unwrap();
    tokyo.engine().submit(tokyo_records).unwrap();
    tokyo.engine().run_epoch().unwrap().unwrap();
    let nyc_crowd = serde_json::to_string(state.default_city().snapshot().crowd()).unwrap();
    let tokyo_crowd = serde_json::to_string(tokyo.snapshot().crowd()).unwrap();
    drop(state);

    // A fresh process over the same WAL roots replays each city from
    // its own directory — neither sees the other's records.
    let recovered = build();
    assert_eq!(
        serde_json::to_string(recovered.default_city().snapshot().crowd()).unwrap(),
        nyc_crowd,
        "default-city recovery diverged"
    );
    assert_eq!(
        serde_json::to_string(recovered.city("tokyo").unwrap().snapshot().crowd()).unwrap(),
        tokyo_crowd,
        "tokyo recovery diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn formerly_too_large_grid_serves_crowd_map_over_tcp() {
    // 8192 x 8192 = 2^26 cells — over the old 2^24 hard cap, so this
    // exact configuration used to die at startup with GridTooLarge.
    let mut cfg = config();
    cfg.grid_rows = 8192;
    cfg.grid_cols = 8192;
    let mut state =
        AppState::with_config(SynthConfig::small(71).generate().unwrap(), cfg.clone()).unwrap();
    state
        .add_city("tokyo", SynthConfig::small(82).generate().unwrap(), cfg)
        .unwrap();
    let (addr, _handle, _join) = Server::bind("127.0.0.1:0", state).unwrap().spawn();

    for city in ["nyc", "tokyo"] {
        let (code, body) = get(addr, &format!("/api/v1/cities/{city}/crowd/map?hour=9"));
        assert_eq!(code, 200, "{city}: {body}");
        assert!(body.starts_with("<svg"), "{city}: not an SVG map");
        let (code, body) = get(addr, &format!("/api/v1/cities/{city}/crowd?hour=9"));
        assert_eq!(code, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(
            !v["cells"].as_array().unwrap().is_empty(),
            "{city}: sub-meter grid lost every placement"
        );
    }
}

#[test]
fn retained_epochs_identical_on_sparse_grids_across_policies() {
    // The byte-identity gate at a formerly-GridTooLarge resolution:
    // every retained epoch, not just the head, must materialize
    // identically whatever the parallelism policy or shard count.
    let base = SynthConfig::small(71).generate().unwrap();
    let first = shifted_records(&base, 1800, 25);
    let second = shifted_records(&base, 7200, 25);

    let mut runs: Vec<(String, Vec<String>)> = Vec::new();
    for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
        for shards in [1usize, 4] {
            let mut cfg = config();
            cfg.grid_rows = 8192;
            cfg.grid_cols = 8192;
            cfg.parallelism = parallelism;
            cfg.shards = shards;
            let engine = ShardedIngestEngine::open(base.clone(), cfg).unwrap();
            engine.submit(first.clone()).unwrap();
            engine.run_epoch().unwrap().expect("first epoch");
            engine.submit(second.clone()).unwrap();
            engine.run_epoch().unwrap().expect("second epoch");
            let materialized: Vec<String> = engine
                .epochs()
                .iter()
                .map(|info| {
                    let model = engine.crowd_at(info.epoch).expect("retained epoch");
                    serde_json::to_string(&*model).unwrap()
                })
                .collect();
            assert!(
                materialized.len() >= 2,
                "expected at least two retained epochs"
            );
            runs.push((format!("{parallelism:?}/shards={shards}"), materialized));
        }
    }
    let (reference_label, reference) = &runs[0];
    for (label, materialized) in &runs[1..] {
        assert_eq!(
            materialized, reference,
            "{label} diverged from {reference_label}"
        );
    }
}
