//! The paper's qualitative results ("shapes"), verified end to end on a
//! mid-sized synthetic dataset: every figure's trend must hold.

use crowdweb::analytics::{
    ablation_miners, crowd_snapshot_table, dataset_stats_table, fig5_sequences_vs_support,
    fig6_sequence_count_distribution, fig7_length_vs_support, fig8_length_distribution,
    prediction_accuracy, ExperimentContext,
};
use crowdweb::prep::Preprocessor;
use crowdweb::synth::SynthConfig;
use std::sync::OnceLock;

/// A mid-sized context: bigger than the unit-test miniature so the
/// statistics are stable, far smaller than paper scale so the suite
/// stays fast.
fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| {
        ExperimentContext::build(
            &SynthConfig::small(2030).users(120).venues(1500),
            &Preprocessor::new().min_active_days(20),
        )
        .unwrap()
    })
}

#[test]
fn section1_dataset_statistics_shape() {
    let report = dataset_stats_table(ctx());
    let m = &report.measured;
    // Sparse, right-skewed per-user counts (mean > median), and the
    // richest window starts at the collection start (April 2012).
    assert!(m.is_sparse());
    assert!(m.mean_records_per_user > m.median_records_per_user);
    assert_eq!(report.richest_window, "Apr 2012");
    assert!(report.filtered_users > 0);
    assert!(report.filtered_users <= m.user_count);
}

#[test]
fn fig5_monotone_decreasing_with_steep_then_flat_knee() {
    let series = fig5_sequences_vs_support(ctx(), &[0.25, 0.5, 0.75]).unwrap();
    assert!(series[0].1 > 0.0, "no patterns at the loosest support");
    // Monotone decreasing.
    assert!(series[0].1 >= series[1].1 && series[1].1 >= series[2].1);
    // Paper: "significant decrease" 0.25 -> 0.5, "less pronounced"
    // 0.5 -> 0.75.
    let drop1 = series[0].1 - series[1].1;
    let drop2 = series[1].1 - series[2].1;
    assert!(drop1 >= drop2, "knee inverted: {series:?}");
}

#[test]
fn fig6_distribution_is_nondegenerate_and_right_skewed() {
    let values = fig6_sequence_count_distribution(ctx(), 0.25).unwrap();
    assert_eq!(values.len(), ctx().prepared.user_count());
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let mut sorted = values.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    assert!(mean > 0.0);
    // Right-skew (a few users with many patterns pull the mean up) —
    // allow equality for robustness.
    assert!(mean >= median * 0.8, "mean {mean} median {median}");
    // Users differ (not a constant distribution).
    assert!(sorted.first() != sorted.last(), "degenerate distribution");
}

#[test]
fn fig7_average_length_decreases_with_support() {
    let series = fig7_length_vs_support(ctx(), &[0.125, 0.25, 0.375, 0.5]).unwrap();
    for w in series.windows(2) {
        assert!(
            w[0].1 + 1e-9 >= w[1].1,
            "length must not grow with support: {series:?}"
        );
    }
    // "Eatery" is more frequent than "Eatery, Shops": at the loosest
    // support, patterns are meaningfully longer than single items.
    assert!(series[0].1 > 1.05, "{series:?}");
}

#[test]
fn fig8_lengths_are_at_least_one_and_vary() {
    let values = fig8_length_distribution(ctx(), 0.25).unwrap();
    assert!(!values.is_empty());
    assert!(values.iter().all(|v| *v >= 1.0));
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(0.0f64, f64::max);
    assert!(max > min, "degenerate length distribution");
}

#[test]
fn figs3_4_crowd_relocates_between_windows() {
    let rows = crowd_snapshot_table(ctx(), &[9, 19], 10).unwrap();
    let morning: Vec<_> = rows.iter().filter(|r| r.window == "9-10 am").collect();
    let evening: Vec<_> = rows.iter().filter(|r| r.window == "7-8 pm").collect();
    assert!(!morning.is_empty(), "9-10 am crowd is empty");
    assert!(!evening.is_empty(), "7-8 pm crowd is empty");
    let m_cells: Vec<u64> = morning.iter().map(|r| r.cell).collect();
    let e_cells: Vec<u64> = evening.iter().map(|r| r.cell).collect();
    assert_ne!(m_cells, e_cells, "crowd did not move between windows");
}

#[test]
fn ablation_classic_equals_gsp_and_gap_prunes() {
    let rows = ablation_miners(ctx(), &[0.25, 0.5]).unwrap();
    for r in &rows {
        assert_eq!(r.classic_patterns, r.gsp_patterns);
        assert!(r.modified_patterns <= r.classic_patterns);
        assert!(r.classic_patterns > 0 || r.min_support > 0.25);
    }
}

#[test]
fn prediction_motivation_holds() {
    let rows = prediction_accuracy(ctx()).unwrap();
    let best = |scheme: &str| {
        rows.iter()
            .filter(|r| r.scheme == scheme)
            .map(|r| r.accuracy)
            .fold(0.0f64, f64::max)
    };
    // Abstraction strictly helps, monotonically across the hierarchy.
    assert!(best("kind") > best("venue"));
    assert!(best("category") >= best("venue"));
    // Raw-venue prediction is weak (the paper cites 8-25%; mid-scale
    // synthetic data sits in the same regime).
    assert!(best("venue") < 0.30, "venue accuracy {}", best("venue"));
}
