//! Serde round-trip tests: every serializable data structure must
//! survive JSON serialization with its semantics intact (C-SERDE).
//! Lookup indices are rebuilt via the documented `rebuild_index` hooks.

use crowdweb::crowd::{CrowdModel, TimeWindows};
use crowdweb::prelude::*;

#[test]
fn dataset_round_trips_through_json() {
    let original = SynthConfig::small(81).users(10).generate().unwrap();
    let json = serde_json::to_string(&original).unwrap();
    let mut restored: Dataset = serde_json::from_str(&json).unwrap();
    restored.rebuild_index();

    assert_eq!(restored.len(), original.len());
    assert_eq!(restored.user_count(), original.user_count());
    assert_eq!(restored.venue_count(), original.venue_count());
    assert_eq!(restored.checkins(), original.checkins());
    // Indexed lookups work after rebuild.
    let user = original.user_ids().next().unwrap();
    assert_eq!(restored.checkins_of(user), original.checkins_of(user));
    let venue = original.venues()[0].id();
    assert_eq!(
        restored.venue(venue).map(|v| v.name()),
        original.venue(venue).map(|v| v.name())
    );
    // Taxonomy lookups too.
    assert_eq!(
        restored.taxonomy().id_of("Coffee Shop"),
        original.taxonomy().id_of("Coffee Shop")
    );
}

#[test]
fn prepared_pipeline_output_round_trips() {
    let dataset = SynthConfig::small(82).generate().unwrap();
    let prepared = Preprocessor::new()
        .min_active_days(20)
        .prepare(&dataset)
        .unwrap();
    let json = serde_json::to_string(&prepared).unwrap();
    let restored: Prepared = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, prepared);
    assert_eq!(
        restored.seqdb().total_sequences(),
        prepared.seqdb().total_sequences()
    );
}

#[test]
fn patterns_round_trip() {
    let dataset = SynthConfig::small(83).generate().unwrap();
    let prepared = Preprocessor::new()
        .min_active_days(20)
        .prepare(&dataset)
        .unwrap();
    let patterns = PatternMiner::new(0.2)
        .unwrap()
        .detect_all(&prepared)
        .unwrap();
    let json = serde_json::to_string(&patterns).unwrap();
    let restored: Vec<UserPatterns> = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, patterns);
}

#[test]
fn crowd_model_round_trips() {
    let dataset = SynthConfig::small(84).generate().unwrap();
    let prepared = Preprocessor::new()
        .min_active_days(20)
        .prepare(&dataset)
        .unwrap();
    let patterns = PatternMiner::new(0.15)
        .unwrap()
        .detect_all(&prepared)
        .unwrap();
    let grid = MicrocellGrid::new(BoundingBox::NYC, 10, 10).unwrap();
    let model = CrowdBuilder::new(&dataset, &prepared)
        .build(&patterns, grid)
        .unwrap();
    let json = serde_json::to_string(&model).unwrap();
    let restored: CrowdModel = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, model);
    // Behaviour is identical, not just structure.
    assert_eq!(
        restored.snapshot_at_hour(9).unwrap().cells,
        model.snapshot_at_hour(9).unwrap().cells
    );
}

#[test]
fn geo_primitives_round_trip() {
    let point = LatLon::new(40.7580, -73.9855).unwrap();
    let restored: LatLon = serde_json::from_str(&serde_json::to_string(&point).unwrap()).unwrap();
    assert_eq!(restored, point);

    let bbox = BoundingBox::NYC;
    let restored: BoundingBox =
        serde_json::from_str(&serde_json::to_string(&bbox).unwrap()).unwrap();
    assert_eq!(restored, bbox);

    let grid = MicrocellGrid::new(bbox, 7, 9).unwrap();
    let restored: MicrocellGrid =
        serde_json::from_str(&serde_json::to_string(&grid).unwrap()).unwrap();
    assert_eq!(restored, grid);
    assert_eq!(restored.cell_of(point), grid.cell_of(point));

    let windows = TimeWindows::with_width(2).unwrap();
    let restored: TimeWindows =
        serde_json::from_str(&serde_json::to_string(&windows).unwrap()).unwrap();
    assert_eq!(restored, windows);
}

#[test]
fn geojson_output_is_spec_shaped() {
    use crowdweb::geo::geojson::{Feature, FeatureCollection, Geometry};
    let p = LatLon::new(40.75, -73.98).unwrap();
    let fc: FeatureCollection = vec![
        Feature::new(Geometry::point(p)).with_property("name", "x"),
        Feature::new(Geometry::rect(BoundingBox::NYC)).with_property("count", 3i64),
        Feature::new(Geometry::line(&[p, p])),
    ]
    .into_iter()
    .collect();
    let json: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&fc).unwrap()).unwrap();
    assert_eq!(json["type"], "FeatureCollection");
    assert_eq!(json["features"][0]["type"], "Feature");
    assert_eq!(json["features"][0]["geometry"]["type"], "Point");
    assert_eq!(json["features"][1]["geometry"]["type"], "Polygon");
    assert_eq!(json["features"][2]["geometry"]["type"], "LineString");
    // Coordinates are [lon, lat].
    assert_eq!(
        json["features"][0]["geometry"]["coordinates"][0]
            .as_f64()
            .unwrap(),
        -73.98
    );
}
