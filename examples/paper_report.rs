//! Generates `EXPERIMENTS.md`: runs every paper experiment at full
//! paper scale (1,083 users, 11 months) and records paper-vs-measured
//! for every table and figure.
//!
//! ```sh
//! cargo run --release --example paper_report            # writes EXPERIMENTS.md
//! cargo run --release --example paper_report -- --small # fast smoke run
//! ```

use crowdweb::analytics::{generate_report, ExperimentContext};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small = std::env::args().any(|a| a == "--small");
    let (ctx, scale_note, strict) = if small {
        (
            ExperimentContext::small(2023)?,
            "miniature scale (40 users, 3 months) — smoke run",
            false,
        )
    } else {
        eprintln!("building paper-scale context (1,083 users, 11 months)...");
        (
            ExperimentContext::paper_scale(2023)?,
            "full paper scale (1,083 users, 11 months, seed 2023)",
            true,
        )
    };
    let md = generate_report(&ctx, scale_note, strict)?;
    std::fs::write("EXPERIMENTS.md", &md)?;
    println!("wrote EXPERIMENTS.md ({} bytes)", md.len());
    Ok(())
}
