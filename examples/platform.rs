//! Runs the full CrowdWeb platform: the HTTP server with the embedded
//! single-page front-end (user list, per-user patterns and place
//! network, the crowd city view with an hour slider and the animation
//! button, and the four evaluation figures).
//!
//! ```sh
//! cargo run --release --example platform                   # small demo data
//! cargo run --release --example platform -- --paper        # 1,083-user scale
//! cargo run --release --example platform -- --port 8080
//! ```
//!
//! Then open the printed URL in a browser. Upload a visitor check-in
//! history (the demo-paper booth feature) with:
//!
//! ```sh
//! curl -X POST --data-binary @history.tsv http://127.0.0.1:PORT/api/upload
//! ```

use crowdweb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let paper_scale = args.iter().any(|a| a == "--paper");
    let port: u16 = args
        .iter()
        .position(|a| a == "--port")
        .and_then(|i| args.get(i + 1))
        .and_then(|p| p.parse().ok())
        .unwrap_or(0);

    let (dataset, min_days) = if paper_scale {
        println!("generating paper-scale dataset (1,083 users, 11 months)...");
        (SynthConfig::paper_nyc().generate()?, 50)
    } else {
        (SynthConfig::small(8).users(60).generate()?, 20)
    };
    println!(
        "dataset ready: {} check-ins by {} users",
        dataset.len(),
        dataset.user_count()
    );

    println!("mining patterns and building the crowd model...");
    let state = AppState::build(dataset, min_days)?;
    let server = Server::bind(("127.0.0.1", port), state)?;
    println!("CrowdWeb listening on http://{}", server.local_addr());
    println!("press Ctrl-C to stop");
    server.run();
    Ok(())
}
