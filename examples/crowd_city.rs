//! The city-scale crowd view (the paper's Figures 3–4): synchronize all
//! users' patterns, aggregate them per microcell per hour, watch the
//! crowd move, and export SVG maps, GeoJSON, and an animated frame
//! sequence.
//!
//! ```sh
//! cargo run --release --example crowd_city
//! ```
//!
//! Writes `out/crowd_<hour>.svg`, `out/crowd_9.geojson`, and
//! `out/crowd_frames.txt`.

use crowdweb::analytics::TextTable;
use crowdweb::prelude::*;
use crowdweb::viz::{snapshot_to_geojson, CityMap};
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SynthConfig::small(123).generate()?;
    let out = PipelineDriver::new(0.15)?
        .preprocessor(Preprocessor::new().min_active_days(20))
        .windows(TimeWindows::hourly())
        .grid(BoundingBox::NYC, 20, 20)
        .parallelism(Parallelism::Auto)
        .run(&dataset)?;
    let (grid, model) = (&out.grid, &out.crowd);

    // Crowd distribution across the day.
    println!("== Crowd size per window ==");
    let mut table = TextTable::new(&["window", "users", "occupied cells", "busiest cell"]);
    for frame in model.animation_frames() {
        if frame.total_users() == 0 {
            continue;
        }
        let (cell, n) = frame.busiest_cells()[0];
        table.row(&[
            &frame.window.label(),
            &frame.total_users().to_string(),
            &frame.occupied_cell_count().to_string(),
            &format!("{cell} ({n})"),
        ]);
    }
    println!("{table}");

    // The Figure 3 vs Figure 4 contrast: how the crowd relocates.
    let morning = model.snapshot_at_hour(9).expect("hourly");
    let evening = model.snapshot_at_hour(19).expect("hourly");
    println!(
        "crowd moved: 9-10 am occupies {} cells, 7-8 pm occupies {} cells",
        morning.occupied_cell_count(),
        evening.occupied_cell_count()
    );

    // Flows between consecutive windows.
    let windows = model.windows();
    if let (Some(i9), Some(i10)) = (windows.index_of_hour(9), windows.index_of_hour(10)) {
        let flows = model.flows(i9, i10)?;
        let moved: usize = flows
            .iter()
            .filter(|f| f.from != f.to)
            .map(|f| f.count)
            .sum();
        let stayed: usize = flows
            .iter()
            .filter(|f| f.from == f.to)
            .map(|f| f.count)
            .sum();
        println!("9 am -> 10 am: {stayed} users stayed put, {moved} moved cells");
    }

    // Exports.
    fs::create_dir_all("out")?;
    for hour in [9u8, 12, 19, 22] {
        let snap = model.snapshot_at_hour(hour).expect("hourly");
        fs::write(
            format!("out/crowd_{hour}.svg"),
            CityMap::new(grid).render(&snap),
        )?;
    }
    fs::write(
        "out/crowd_9.geojson",
        serde_json::to_string_pretty(&snapshot_to_geojson(&morning, grid))?,
    )?;
    let frames: Vec<String> = model
        .animation_frames()
        .iter()
        .map(|f| format!("{}\t{}", f.window.label(), f.total_users()))
        .collect();
    fs::write("out/crowd_frames.txt", frames.join("\n"))?;
    println!("wrote out/crowd_*.svg, out/crowd_9.geojson, out/crowd_frames.txt");
    Ok(())
}
