//! Quickstart: the full CrowdWeb pipeline in one file.
//!
//! Synthesizes the Foursquare-NYC-like dataset, preprocesses it the way
//! the paper does, mines every user's mobility patterns, aggregates the
//! crowd, and prints a tour of the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use crowdweb::analytics::TextTable;
use crowdweb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data. `SynthConfig::paper_nyc()` reproduces the paper's scale
    //    (1,083 users, 11 months); `small` keeps the quickstart snappy.
    let dataset = SynthConfig::small(2024).generate()?;
    let stats = DatasetStats::compute(&dataset);
    println!("== Dataset (synthetic Foursquare-style check-ins) ==");
    let mut t = TextTable::new(&["metric", "value"]);
    t.row(&["check-ins", &stats.total_checkins.to_string()]);
    t.row(&["users", &stats.user_count.to_string()]);
    t.row(&["venues", &stats.venue_count.to_string()]);
    t.row(&[
        "mean records/user",
        &format!("{:.1}", stats.mean_records_per_user),
    ]);
    t.row(&[
        "median records/user",
        &format!("{:.1}", stats.median_records_per_user),
    ]);
    t.row(&["sparse (<1 record/day)", &stats.is_sparse().to_string()]);
    println!("{t}");

    // 2-4. Preprocess, mine, and aggregate in one driven run: richest
    //    3-month window, active users, modified PrefixSpan at 0.15
    //    support, hourly crowd windows on a 20x20 NYC grid — every
    //    parallel stage on the shared pool.
    let out = PipelineDriver::new(0.15)?
        .preprocessor(Preprocessor::new().min_active_days(20))
        .parallelism(Parallelism::Auto)
        .run(&dataset)?;
    let (prepared, patterns, model) = (&out.prepared, &out.patterns, &out.crowd);
    println!(
        "study window {} | {} of {} users pass the activity filter\n",
        prepared.window(),
        prepared.user_count(),
        dataset.user_count()
    );

    let user = patterns
        .iter()
        .max_by_key(|u| u.pattern_count())
        .expect("at least one user");
    println!(
        "== Patterns of {} ({} active days, {} patterns) ==",
        user.user,
        user.active_days,
        user.pattern_count()
    );
    let labeler = prepared_labeler(&dataset, prepared);
    let slotting = prepared.slotting();
    for p in user.patterns.iter().rev().take(8) {
        let rendered: Vec<String> = p
            .items
            .iter()
            .map(|it| {
                format!(
                    "{}@{}",
                    labeler.name_of(it.label).unwrap_or_default(),
                    slotting.label(it.slot)
                )
            })
            .collect();
        println!("  <{}> on {} days", rendered.join(" -> "), p.support);
    }

    println!("\n== Crowd in the smart city ==");
    for hour in [9u8, 12, 19, 22] {
        let snap = model.snapshot_at_hour(hour).expect("hourly windows");
        let busiest = snap
            .busiest_cells()
            .first()
            .map(|(c, n)| format!("busiest {c} holds {n}"))
            .unwrap_or_else(|| "empty".to_owned());
        println!(
            "  {:>8}: {:>3} users across {:>2} cells ({busiest})",
            snap.window.label(),
            snap.total_users(),
            snap.occupied_cell_count()
        );
    }
    Ok(())
}

fn prepared_labeler<'a>(dataset: &'a Dataset, prepared: &Prepared) -> crowdweb::prep::Labeler<'a> {
    crowdweb::prep::Labeler::new(dataset, prepared.scheme())
}
