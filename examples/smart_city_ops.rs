//! Smart-city operations: the crowd-management scenario the paper's
//! introduction motivates.
//!
//! Injects a stadium event into the synthetic city, then uses the
//! CrowdWeb stack the way a city operations room would:
//!
//! 1. detect hotspots (emerging vs persistent) across the day,
//! 2. inspect crowd flows around the morning commute,
//! 3. group users by behavioural similarity,
//! 4. rank users by predictability (entropy profile),
//! 5. export the flow map and activity heatmap as SVG.
//!
//! ```sh
//! cargo run --release --example smart_city_ops
//! ```

use crowdweb::analytics::TextTable;
use crowdweb::crowd::{detect_hotspots, recurrent_hotspots, HotspotConfig};
use crowdweb::mobility::{group_users, predictability_profile};
use crowdweb::prelude::*;
use crowdweb::synth::CityEvent;
use crowdweb::viz::{render_activity_heatmap, render_flow_map};
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A city with a Saturday-evening stadium event.
    let config = SynthConfig::small(555).users(80).event(CityEvent {
        name: "stadium concert".into(),
        day_offset: 11, // a Saturday (start 2012-04-03 is a Tuesday)
        hour: 20,
        attendance: 0.7,
    });
    let dataset = config.generate()?;
    let out = PipelineDriver::new(0.15)?
        .preprocessor(Preprocessor::new().min_active_days(20))
        .parallelism(Parallelism::Auto)
        .run(&dataset)?;
    let (prepared, patterns, grid, model) = (&out.prepared, &out.patterns, &out.grid, &out.crowd);

    // 1. Hotspots.
    println!("== Hotspots across the day (z >= 1.5, >= 3 users) ==");
    let hotspots = detect_hotspots(model, &HotspotConfig::default())?;
    let mut t = TextTable::new(&["window", "cell", "users", "z", "phase"]);
    for h in hotspots.iter().take(12) {
        t.row(&[
            &model
                .windows()
                .get(h.window)
                .map(|w| w.label())
                .unwrap_or_default(),
            &h.cell.to_string(),
            &h.count.to_string(),
            &format!("{:.1}", h.z_score),
            &format!("{:?}", h.phase),
        ]);
    }
    println!("{t}");
    let recurrent = recurrent_hotspots(&hotspots, 2);
    println!(
        "structurally busy cells (hot in >= 2 windows): {}",
        recurrent
            .iter()
            .map(|(c, n)| format!("{c} x{n}"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 2. Morning-commute flows (7 am home slot -> 9 am work slot).
    let windows = model.windows();
    let (Some(i7h), Some(i9h)) = (windows.index_of_hour(7), windows.index_of_hour(9)) else {
        unreachable!("hourly windows cover the day");
    };
    let flows = model.flows(i7h, i9h)?;
    let moved: usize = flows
        .iter()
        .filter(|f| f.from != f.to)
        .map(|f| f.count)
        .sum();
    let stayed: usize = flows
        .iter()
        .filter(|f| f.from == f.to)
        .map(|f| f.count)
        .sum();
    println!("\n7 am -> 9 am commute: {moved} users changed microcells, {stayed} stayed");

    // 3. Behavioural groups.
    let groups = group_users(patterns, 0.9);
    let sizes: Vec<String> = groups.iter().take(6).map(|g| g.len().to_string()).collect();
    println!(
        "\nbehavioural groups at cosine >= 0.9: {} groups (largest: {})",
        groups.len(),
        sizes.join(", ")
    );

    // 4. Predictability ranking.
    println!("\n== Most predictable users (Fano bound from LZ entropy) ==");
    let mut rows: Vec<(UserId, f64, usize)> = prepared
        .seqdb()
        .views()
        .map(|v| {
            let p = predictability_profile(&v.decode());
            (v.user(), p.max_predictability, p.distinct_places)
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut t = TextTable::new(&["user", "max predictability", "distinct places"]);
    for (user, pi, places) in rows.iter().take(8) {
        t.row(&[
            &user.to_string(),
            &format!("{:.1}%", pi * 100.0),
            &places.to_string(),
        ]);
    }
    println!("{t}");

    // 5. Exports.
    fs::create_dir_all("out")?;
    fs::write(
        "out/commute_flows.svg",
        render_flow_map(grid, &flows, "7h \u{2192} 9h"),
    )?;
    let profile = crowdweb::dataset::ActivityProfile::of_dataset(&dataset);
    fs::write(
        "out/city_rhythm.svg",
        render_activity_heatmap(&profile, "City activity rhythm"),
    )?;
    println!("wrote out/commute_flows.svg, out/city_rhythm.svg");
    Ok(())
}
