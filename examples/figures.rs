//! Regenerates every evaluation figure of the paper (Figures 5–8) as
//! data tables and SVG charts, plus the Section I.1 dataset statistics.
//!
//! ```sh
//! cargo run --release --example figures            # small context
//! cargo run --release --example figures -- --paper # full 1,083-user scale
//! ```
//!
//! Writes `out/fig5.svg` … `out/fig8.svg`.

use crowdweb::analytics::{
    dataset_stats_table, fig5_sequences_vs_support, fig6_sequence_count_distribution,
    fig7_length_vs_support, fig8_length_distribution, ExperimentContext, TextTable,
    PAPER_SUPPORT_SWEEP,
};
use crowdweb::viz::{Histogram, LineChart};
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let ctx = if paper_scale {
        println!("building paper-scale context (1,083 users, 11 months)...");
        ExperimentContext::paper_scale(2023)?
    } else {
        ExperimentContext::small(2023)?
    };

    // Section I.1 dataset statistics.
    let report = dataset_stats_table(&ctx);
    println!(
        "== Dataset statistics (paper: 227,428 check-ins, 1,083 users, mean 210, median 153) =="
    );
    let mut t = TextTable::new(&["metric", "measured"]);
    t.row(&["check-ins", &report.measured.total_checkins.to_string()]);
    t.row(&["users", &report.measured.user_count.to_string()]);
    t.row(&[
        "mean records/user",
        &format!("{:.1}", report.measured.mean_records_per_user),
    ]);
    t.row(&[
        "median records/user",
        &format!("{:.1}", report.measured.median_records_per_user),
    ]);
    t.row(&["sparse", &report.measured.is_sparse().to_string()]);
    t.row(&["richest 3-month window", &report.richest_window]);
    t.row(&[
        "filtered users (>50 days at paper scale)",
        &report.filtered_users.to_string(),
    ]);
    println!("{t}");

    fs::create_dir_all("out")?;

    // Figure 5.
    let fig5 = fig5_sequences_vs_support(&ctx, &PAPER_SUPPORT_SWEEP)?;
    println!("== Fig 5: avg sequences per user vs min_support ==");
    let mut t5 = TextTable::new(&["min_support", "avg sequences/user"]);
    for &(s, v) in &fig5 {
        t5.row(&[&format!("{s:.3}"), &format!("{v:.2}")]);
    }
    println!("{t5}");
    fs::write(
        "out/fig5.svg",
        LineChart::new("Fig 5: average number of sequences per user")
            .x_label("minimum support threshold")
            .y_label("avg sequences per user")
            .series("modified PrefixSpan", &fig5)
            .render(),
    )?;

    // Figure 6.
    let fig6 = fig6_sequence_count_distribution(&ctx, 0.5)?;
    println!(
        "== Fig 6: distribution of sequence counts at min_support=0.5 ({} users) ==\n",
        fig6.len()
    );
    fs::write(
        "out/fig6.svg",
        Histogram::from_values(
            "Fig 6: distribution of number of sequences (min_support = 0.5)",
            &fig6,
            10,
        )
        .x_label("number of sequences")
        .render(),
    )?;

    // Figure 7.
    let fig7 = fig7_length_vs_support(&ctx, &PAPER_SUPPORT_SWEEP)?;
    println!("== Fig 7: avg sequence length per user vs min_support ==");
    let mut t7 = TextTable::new(&["min_support", "avg length/user"]);
    for &(s, v) in &fig7 {
        t7.row(&[&format!("{s:.3}"), &format!("{v:.3}")]);
    }
    println!("{t7}");
    fs::write(
        "out/fig7.svg",
        LineChart::new("Fig 7: average length of sequences per user")
            .x_label("minimum support threshold")
            .y_label("avg sequence length")
            .series("modified PrefixSpan", &fig7)
            .render(),
    )?;

    // Figure 8.
    let fig8 = fig8_length_distribution(&ctx, 0.5)?;
    println!(
        "== Fig 8: distribution of avg lengths at min_support=0.5 ({} users) ==",
        fig8.len()
    );
    fs::write(
        "out/fig8.svg",
        Histogram::from_values(
            "Fig 8: distribution of average length (min_support = 0.5)",
            &fig8,
            10,
        )
        .x_label("average sequence length")
        .render(),
    )?;

    println!("wrote out/fig5.svg .. out/fig8.svg");
    Ok(())
}
