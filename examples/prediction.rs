//! The paper's motivation experiment: next-place prediction accuracy is
//! poor over raw venues (the literature it cites reports 8–25 %) and
//! improves sharply once places are abstracted — the whole reason
//! CrowdWeb mines patterns over labels instead of venues.
//!
//! ```sh
//! cargo run --release --example prediction            # small context
//! cargo run --release --example prediction -- --paper # full scale
//! ```

use crowdweb::analytics::{prediction_accuracy, ExperimentContext, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let ctx = if paper_scale {
        println!("building paper-scale context (1,083 users, 11 months)...");
        ExperimentContext::paper_scale(7)?
    } else {
        ExperimentContext::small(7)?
    };

    let rows = prediction_accuracy(&ctx)?;
    println!("== Next-place prediction accuracy (temporal 70/30 split per user) ==");
    let mut t = TextTable::new(&["label scheme", "predictor", "accuracy", "predictions"]);
    for r in &rows {
        t.row(&[
            &r.scheme,
            &r.predictor,
            &format!("{:.1}%", r.accuracy * 100.0),
            &r.total.to_string(),
        ]);
    }
    println!("{t}");

    let best = |scheme: &str| {
        rows.iter()
            .filter(|r| r.scheme == scheme)
            .map(|r| r.accuracy)
            .fold(0.0f64, f64::max)
    };
    println!(
        "best venue-level accuracy:    {:.1}%  (the paper's motivation: raw prediction is weak)",
        best("venue") * 100.0
    );
    println!(
        "best category-level accuracy: {:.1}%",
        best("category") * 100.0
    );
    println!(
        "best kind-level accuracy:     {:.1}%  (place abstraction makes behaviour predictable)",
        best("kind") * 100.0
    );
    Ok(())
}
