//! Individual mobility patterns (the iMAP view): mine one user at
//! several support thresholds, show how the pattern set shrinks, and
//! export the user's place network as SVG and Graphviz DOT.
//!
//! ```sh
//! cargo run --release --example individual_patterns
//! ```
//!
//! Writes `out/network_u<id>.svg` and `out/network_u<id>.dot`.

use crowdweb::analytics::TextTable;
use crowdweb::prelude::*;
use crowdweb::viz::render_place_graph;
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SynthConfig::small(99).generate()?;
    let prepared = Preprocessor::new().min_active_days(20).prepare(&dataset)?;
    let labeler = crowdweb::prep::Labeler::new(&dataset, prepared.scheme());
    let slotting = prepared.slotting();

    // Pick the user with the most active days.
    let view = prepared
        .seqdb()
        .views()
        .max_by_key(|v| v.day_count())
        .expect("filter kept at least one user");
    let user = view.user();
    let days = view.decode();
    println!(
        "user {user}: {} active days in {}\n",
        days.len(),
        prepared.window()
    );

    // The paper's Figure 5/7 effect, on a single user: raising
    // min_support shrinks the pattern set and shortens patterns.
    let mut table = TextTable::new(&["min_support", "patterns", "avg length", "max length"]);
    for support in [0.1, 0.2, 0.3, 0.5, 0.75] {
        let mined = PatternMiner::new(support)?.detect(user, &days)?;
        table.row(&[
            &format!("{support:.2}"),
            &mined.pattern_count().to_string(),
            &format!("{:.2}", mined.mean_pattern_length()),
            &mined.patterns.max_length().to_string(),
        ]);
    }
    println!("{table}");

    // Show the strongest patterns with human-readable labels.
    let mined = PatternMiner::new(0.15)?.detect(user, &days)?;
    let mut strongest: Vec<_> = mined.patterns.iter().collect();
    strongest.sort_by(|a, b| b.support.cmp(&a.support).then(b.len().cmp(&a.len())));
    println!("strongest patterns:");
    for p in strongest.iter().take(10) {
        let rendered: Vec<String> = p
            .items
            .iter()
            .map(|it| {
                format!(
                    "{} @ {}",
                    labeler.name_of(it.label).unwrap_or_default(),
                    slotting.label(it.slot)
                )
            })
            .collect();
        println!(
            "  [{}/{} days] {}",
            p.support,
            mined.active_days,
            rendered.join("  ->  ")
        );
    }

    // Export the place network.
    let graph = PlaceGraph::from_sequences(user, &days);
    fs::create_dir_all("out")?;
    let svg_path = format!("out/network_{user}.svg");
    let dot_path = format!("out/network_{user}.dot");
    fs::write(
        &svg_path,
        render_place_graph(&graph, |l| labeler.name_of(l).unwrap_or_default()),
    )?;
    fs::write(
        &dot_path,
        graph.to_dot(|l| labeler.name_of(l).unwrap_or_default()),
    )?;
    println!(
        "\nplace network: {} places, {} transitions -> {svg_path}, {dot_path}",
        graph.node_count(),
        graph.edge_count()
    );
    Ok(())
}
