#!/usr/bin/env bash
# The CI gate: formatting, lints, and the full test suite.
#
#   scripts/check.sh
#
# Run from anywhere; it cds to the repo root first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== ingest determinism gate =="
cargo test -q -p crowdweb-ingest
cargo test -q --test ingest_determinism

echo "== observability gate =="
cargo test -q -p crowdweb-obs -p crowdweb-server
grep -q '/api/metrics' README.md || {
    echo "README.md must document the /api/metrics endpoint" >&2
    exit 1
}

echo "== server gate =="
cargo test -q -p crowdweb-server
# The evented-loop guarantee must hold explicitly: slow-drip clients
# cannot block a fast one.
cargo test -q -p crowdweb-server slow_drip
# Keep-alive semantics, pipelining included, end to end over TCP.
cargo test -q -p crowdweb-server --test keep_alive
cargo test -q -p crowdweb-server --test keep_alive two_pipelined
grep -q '/api/healthz' README.md || {
    echo "README.md must document the /api/healthz endpoint" >&2
    exit 1
}
for tunable in keep_alive_requests keep_alive_idle; do
    grep -qF "$tunable" README.md || {
        echo "README.md must document the $tunable tunable" >&2
        exit 1
    }
done

echo "== connection scaling spot check (10k keep-alive sockets) =="
# The bench splits client and server across two processes, so ~10k fds
# per process suffice for the 10k-connection gate. Skip gracefully
# where the fd limit cannot reach that.
if ulimit -n 16384 2>/dev/null || [ "$(ulimit -n)" -ge 16384 ]; then
    CROWDWEB_SCALE_ONLY=1 cargo bench -q -p crowdweb-bench --bench connection_scaling
    awk -F'\t' '
        /^10000\t/ {
            found = 1
            if ($3 >= 1000) { print "10k-conn p50 dispatch " $3 "us >= 1ms" > "/dev/stderr"; exit 1 }
            if ($7 < 10000) { print "server held only " $7 " connections" > "/dev/stderr"; exit 1 }
        }
        END { if (!found) { print "no 10000-connection row in connection_scaling.tsv" > "/dev/stderr"; exit 1 } }
    ' crates/bench/out/connection_scaling.tsv
else
    echo "skipped: cannot raise ulimit -n to 16384 (current: $(ulimit -n))"
fi

echo "== tenancy gate =="
# Two cities must ingest concurrently without cross-contaminating each
# other's snapshots, per-city WAL roots must recover independently, and
# a formerly-GridTooLarge resolution must serve
# /api/v1/cities/{id}/crowd/map end to end over TCP with retained
# epochs byte-identical across parallelism and shard policies.
cargo test -q --test tenancy
# The sparse cell store must stay provably equivalent to the dense one.
cargo test -q -p crowdweb-geo cells
grep -qF '/api/v1/cities/{city}' README.md || {
    echo "README.md must document the /api/v1/cities/{city}/... tenant routes" >&2
    exit 1
}
grep -qF 'default city' README.md || {
    echo "README.md must document the default-city alias policy" >&2
    exit 1
}

echo "== epoch history gate =="
# Time travel must stay byte-identical to cold rebuilds, end to end.
cargo test -q --test epoch_history
cargo test -q --test server_e2e time_travel
# The history metrics must stay pinned by the exposition test.
for metric in crowdweb_ingest_history_retained_epochs \
    crowdweb_ingest_history_resident_bytes \
    crowdweb_ingest_history_reconstruction_seconds; do
    grep -qF "$metric" crates/server/src/api.rs || {
        echo "the /api/metrics exposition test must assert $metric" >&2
        exit 1
    }
done

echo "== API v1 doc-drift gate =="
# Every route registered in build_router must appear verbatim in the
# README endpoint table (parameter spellings like :user included).
routes=$(awk '/fn build_router/,/^}/' crates/server/src/api.rs |
    grep -oE '"/api/v1[^"]*"' | tr -d '"' | sort -u)
[ -n "$routes" ] || {
    echo "no /api/v1 routes found in crates/server/src/api.rs build_router" >&2
    exit 1
}
for route in $routes; do
    grep -qF "$route" README.md || {
        echo "README.md does not document registered route: $route" >&2
        exit 1
    }
done

echo "== loadgen gate =="
# Trace synthesis must be deterministic, every shipped scenario must
# parse and synthesize, and the smoke scenario must replay cleanly
# against a freshly booted server (nonzero throughput, zero unexpected
# non-2xx, valid TSV).
cargo test -q -p crowdweb-loadgen
cargo test -q -p crowdweb-loadgen --test smoke_gate
grep -qF 'crowdweb-loadgen run' README.md || {
    echo "README.md must document the crowdweb-loadgen run quick-start" >&2
    exit 1
}

echo "All checks passed."
