#!/usr/bin/env bash
# The CI gate: formatting, lints, and the full test suite.
#
#   scripts/check.sh
#
# Run from anywhere; it cds to the repo root first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== ingest determinism gate =="
cargo test -q -p crowdweb-ingest
cargo test -q --test ingest_determinism

echo "All checks passed."
