#!/usr/bin/env bash
# The CI gate: formatting, lints, and the full test suite.
#
#   scripts/check.sh
#
# Run from anywhere; it cds to the repo root first.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== ingest determinism gate =="
cargo test -q -p crowdweb-ingest
cargo test -q --test ingest_determinism

echo "== observability gate =="
cargo test -q -p crowdweb-obs -p crowdweb-server
grep -q '/api/metrics' README.md || {
    echo "README.md must document the /api/metrics endpoint" >&2
    exit 1
}

echo "== server gate =="
cargo test -q -p crowdweb-server
# The evented-loop guarantee must hold explicitly: slow-drip clients
# cannot block a fast one.
cargo test -q -p crowdweb-server slow_drip
grep -q '/api/healthz' README.md || {
    echo "README.md must document the /api/healthz endpoint" >&2
    exit 1
}

echo "All checks passed."
