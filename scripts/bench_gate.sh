#!/usr/bin/env bash
# Perf tripwire: replay a loadgen scenario against a freshly booted
# in-process server, then gate on the whole-run totals row of the
# output TSV (p99 latency, unexpected non-2xx count, 503 shed count,
# minimum throughput).
#
#   scripts/bench_gate.sh [scenario.toml]
#
# Defaults to scenarios/smoke.toml. Thresholds are read from the
# adjacent <scenario>.thresholds.toml; see scenarios/smoke.thresholds.toml
# for the format and the philosophy (generous bounds, tripwire not
# benchmark). The TSV is left in out/ for CI to upload as an artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

SCENARIO=${1:-scenarios/smoke.toml}
THRESHOLDS="${SCENARIO%.toml}.thresholds.toml"
[ -f "$SCENARIO" ] || { echo "no such scenario: $SCENARIO" >&2; exit 1; }
[ -f "$THRESHOLDS" ] || { echo "no thresholds file: $THRESHOLDS" >&2; exit 1; }

# One integer value from the thresholds file: strip comments, spaces,
# and digit-group underscores.
threshold() {
    awk -F'=' -v key="$1" '
        { sub(/#.*/, "") }
        $1 ~ "^[ \t]*" key "[ \t]*$" { gsub(/[ \t_]/, "", $2); print $2; exit }
    ' "$THRESHOLDS"
}
for key in p99_us_max non2xx_max http503_max min_requests; do
    val=$(threshold "$key")
    [ -n "$val" ] || { echo "$THRESHOLDS is missing $key" >&2; exit 1; }
    eval "$key=$val"
done

name=$(awk -F'"' '/^[ \t]*name[ \t]*=/ { print $2; exit }' "$SCENARIO")
out="out/loadgen_${name}.tsv"

echo "== bench gate: $SCENARIO =="
cargo run -q --release -p crowdweb-loadgen -- run "$SCENARIO" --out out --quiet

[ -f "$out" ] || { echo "loadgen produced no $out" >&2; exit 1; }

awk -F'\t' \
    -v p99="$p99_us_max" -v non2xx="$non2xx_max" \
    -v h503="$http503_max" -v minreq="$min_requests" '
    $1 == "total" && $2 == "all" && $3 == "all" {
        found = 1
        printf "requests=%d non2xx=%d http503=%d p99_us=%d\n", $4, $5, $6, $10
        if ($4 < minreq)  { printf "FAIL: %d requests < min_requests %d\n", $4, minreq > "/dev/stderr"; bad = 1 }
        if ($5 > non2xx)  { printf "FAIL: %d unexpected non-2xx > %d\n", $5, non2xx > "/dev/stderr"; bad = 1 }
        if ($6 > h503)    { printf "FAIL: %d shed (503) > %d\n", $6, h503 > "/dev/stderr"; bad = 1 }
        if ($10 > p99)    { printf "FAIL: p99 %dus > %dus\n", $10, p99 > "/dev/stderr"; bad = 1 }
    }
    END {
        if (!found) { print "no total/all/all summary row in TSV" > "/dev/stderr"; exit 1 }
        exit bad
    }
' "$out"

echo "bench gate passed ($out)"
