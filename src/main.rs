//! The `crowdweb` command-line interface.
//!
//! ```text
//! crowdweb serve   [--paper] [--port N] [--tsv FILE]   run the platform
//! crowdweb stats   [--paper] [--tsv FILE]              dataset statistics
//! crowdweb figures [--paper] [--out DIR]               regenerate Figs 5-8
//! crowdweb help                                        this message
//! ```
//!
//! With `--tsv FILE` the real Foursquare `dataset_TSMC2014_NYC.txt` (or
//! any file in that format) is used instead of the synthetic generator.

use crowdweb::analytics::{
    dataset_stats_table, fig5_sequences_vs_support, fig6_sequence_count_distribution,
    fig7_length_vs_support, fig8_length_distribution, ExperimentContext, TextTable,
    PAPER_SUPPORT_SWEEP,
};
use crowdweb::prelude::*;
use crowdweb::viz::{Histogram, LineChart};
use std::process::ExitCode;

const HELP: &str = "crowdweb - crowd mobility patterns in smart cities

USAGE:
    crowdweb serve   [--paper] [--port N] [--tsv FILE]
    crowdweb stats   [--paper] [--tsv FILE]
    crowdweb figures [--paper] [--out DIR]
    crowdweb help

OPTIONS:
    --paper      full paper scale (1,083 users, 11 months); default is a
                 fast miniature
    --port N     listen port for `serve` (default: ephemeral)
    --tsv FILE   load a Foursquare-format TSV instead of synthesizing
    --out DIR    output directory for `figures` (default: out)";

struct Args {
    command: String,
    paper: bool,
    port: u16,
    tsv: Option<String>,
    out: String,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    Args {
        command: argv.first().cloned().unwrap_or_else(|| "help".to_owned()),
        paper: argv.iter().any(|a| a == "--paper"),
        port: value_of("--port").and_then(|p| p.parse().ok()).unwrap_or(0),
        tsv: value_of("--tsv"),
        out: value_of("--out").unwrap_or_else(|| "out".to_owned()),
    }
}

fn load_dataset(args: &Args) -> Result<(Dataset, usize), Box<dyn std::error::Error>> {
    if let Some(path) = &args.tsv {
        eprintln!("loading {path}...");
        let dataset = crowdweb::dataset::tsv::load_path(path)?;
        return Ok((dataset, 50));
    }
    if args.paper {
        eprintln!("generating paper-scale synthetic dataset (1,083 users, 11 months)...");
        Ok((SynthConfig::paper_nyc().generate()?, 50))
    } else {
        Ok((SynthConfig::small(8).users(60).generate()?, 20))
    }
}

fn cmd_serve(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let (dataset, min_days) = load_dataset(args)?;
    eprintln!(
        "dataset: {} check-ins by {} users; mining patterns...",
        dataset.len(),
        dataset.user_count()
    );
    let state = AppState::build(dataset, min_days)?;
    let server = Server::bind(("127.0.0.1", args.port), state)?;
    println!("CrowdWeb listening on http://{}", server.local_addr());
    server.run();
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let (dataset, min_days) = load_dataset(args)?;
    let ctx =
        ExperimentContext::from_dataset(dataset, &Preprocessor::new().min_active_days(min_days))?;
    let report = dataset_stats_table(&ctx);
    let m = &report.measured;
    let mut t = TextTable::new(&["metric", "value"]);
    t.row(&["check-ins", &m.total_checkins.to_string()]);
    t.row(&["users", &m.user_count.to_string()]);
    t.row(&["venues", &m.venue_count.to_string()]);
    t.row(&[
        "mean records/user",
        &format!("{:.1}", m.mean_records_per_user),
    ]);
    t.row(&[
        "median records/user",
        &format!("{:.1}", m.median_records_per_user),
    ]);
    t.row(&["collection days", &m.collection_days.to_string()]);
    t.row(&["sparse (<1 record/user/day)", &m.is_sparse().to_string()]);
    t.row(&["richest 3-month window", &report.richest_window]);
    t.row(&["filtered users", &report.filtered_users.to_string()]);
    println!("{t}");
    Ok(())
}

fn cmd_figures(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let ctx = if args.tsv.is_some() {
        let (dataset, min_days) = load_dataset(args)?;
        ExperimentContext::from_dataset(dataset, &Preprocessor::new().min_active_days(min_days))?
    } else if args.paper {
        eprintln!("building paper-scale context...");
        ExperimentContext::paper_scale(2023)?
    } else {
        ExperimentContext::small(2023)?
    };
    std::fs::create_dir_all(&args.out)?;
    let fig5 = fig5_sequences_vs_support(&ctx, &PAPER_SUPPORT_SWEEP)?;
    let fig6 = fig6_sequence_count_distribution(&ctx, 0.5)?;
    let fig7 = fig7_length_vs_support(&ctx, &PAPER_SUPPORT_SWEEP)?;
    let fig8 = fig8_length_distribution(&ctx, 0.5)?;
    std::fs::write(
        format!("{}/fig5.svg", args.out),
        LineChart::new("Fig 5: average number of sequences per user")
            .x_label("minimum support threshold")
            .y_label("avg sequences per user")
            .series("modified PrefixSpan", &fig5)
            .render(),
    )?;
    std::fs::write(
        format!("{}/fig6.svg", args.out),
        Histogram::from_values("Fig 6: sequence count distribution", &fig6, 10)
            .x_label("number of sequences")
            .render(),
    )?;
    std::fs::write(
        format!("{}/fig7.svg", args.out),
        LineChart::new("Fig 7: average length of sequences per user")
            .x_label("minimum support threshold")
            .y_label("avg sequence length")
            .series("modified PrefixSpan", &fig7)
            .render(),
    )?;
    std::fs::write(
        format!("{}/fig8.svg", args.out),
        Histogram::from_values("Fig 8: average length distribution", &fig8, 10)
            .x_label("average sequence length")
            .render(),
    )?;
    let mut t = TextTable::new(&["min_support", "fig5 avg sequences", "fig7 avg length"]);
    for (i, &s) in PAPER_SUPPORT_SWEEP.iter().enumerate() {
        t.row(&[
            &format!("{s:.3}"),
            &format!("{:.2}", fig5[i].1),
            &format!("{:.3}", fig7[i].1),
        ]);
    }
    println!("{t}");
    println!("wrote {}/fig5.svg .. {}/fig8.svg", args.out, args.out);
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let result = match args.command.as_str() {
        "serve" => cmd_serve(&args),
        "stats" => cmd_stats(&args),
        "figures" => cmd_figures(&args),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => {
            eprintln!("unknown command {other:?}\n\n{HELP}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
