//! # CrowdWeb
//!
//! A from-scratch Rust implementation of **CrowdWeb** (ICDCS 2023): a
//! platform that detects individual human mobility patterns from sparse
//! geotagged check-ins with a modified PrefixSpan over abstracted
//! places, then synchronizes and aggregates them into city-scale crowd
//! views over time windows.
//!
//! This facade crate re-exports every subsystem:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`exec`] | `crowdweb-exec` | shared work-stealing pool, symbol interning |
//! | [`geo`] | `crowdweb-geo` | coordinates, microcell grids, tiles, clustering |
//! | [`dataset`] | `crowdweb-dataset` | GTSM data model, TSV I/O, statistics |
//! | [`synth`] | `crowdweb-synth` | calibrated synthetic Foursquare-NYC generator |
//! | [`prep`] | `crowdweb-prep` | window/filter/discretize/label/sequence pipeline |
//! | [`seqmine`] | `crowdweb-seqmine` | PrefixSpan, modified PrefixSpan, GSP |
//! | [`mobility`] | `crowdweb-mobility` | per-user patterns, place graphs, prediction |
//! | [`crowd`] | `crowdweb-crowd` | crowd synchronization, aggregation, animation |
//! | [`ingest`] | `crowdweb-ingest` | live ingestion: WAL, epoch snapshots, incremental updates |
//! | [`obs`] | `crowdweb-obs` | metrics registry: counters, gauges, histograms, Prometheus text |
//! | [`viz`] | `crowdweb-viz` | SVG charts/maps, GeoJSON export |
//! | [`server`] | `crowdweb-server` | the web platform (HTTP API + front-end) |
//! | [`analytics`] | `crowdweb-analytics` | per-figure experiment harness |
//!
//! # Quickstart
//!
//! [`PipelineDriver`](crowd::PipelineDriver) runs the whole
//! prepare → mine → grid → crowd pipeline with one configuration and
//! one [`Parallelism`](exec::Parallelism) policy:
//!
//! ```
//! use crowdweb::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Data (synthetic stand-in for the Foursquare NYC dataset).
//! let dataset = SynthConfig::small(7).generate()?;
//! let out = PipelineDriver::new(0.15)?
//!     .preprocessor(Preprocessor::new().min_active_days(20))
//!     .parallelism(Parallelism::Auto)
//!     .run(&dataset)?;
//! let snapshot = out.crowd.snapshot_at_hour(9).expect("hourly windows");
//! println!("9-10 am crowd: {} users", snapshot.total_users());
//! # Ok(())
//! # }
//! ```
//!
//! The stages remain individually drivable — see
//! [`prep::Preprocessor`], [`mobility::PatternMiner`],
//! [`crowd::CrowdBuilder`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use crowdweb_analytics as analytics;
pub use crowdweb_crowd as crowd;
pub use crowdweb_dataset as dataset;
pub use crowdweb_exec as exec;
pub use crowdweb_geo as geo;
pub use crowdweb_ingest as ingest;
pub use crowdweb_mobility as mobility;
pub use crowdweb_obs as obs;
pub use crowdweb_prep as prep;
pub use crowdweb_seqmine as seqmine;
pub use crowdweb_server as server;
pub use crowdweb_synth as synth;
pub use crowdweb_viz as viz;

/// The most common imports in one place.
pub mod prelude {
    pub use crowdweb_crowd::{
        CrowdBuilder, CrowdModel, CrowdSnapshot, PipelineDriver, PipelineOutput, TimeWindow,
        TimeWindows,
    };
    pub use crowdweb_dataset::{
        CheckIn, Dataset, DatasetStats, Taxonomy, Timestamp, UserId, Venue, VenueId,
    };
    pub use crowdweb_exec::Parallelism;
    pub use crowdweb_geo::{BoundingBox, CellId, LatLon, MicrocellGrid};
    pub use crowdweb_ingest::{IngestConfig, IngestEngine, PlatformSnapshot, ShardedIngestEngine};
    pub use crowdweb_mobility::{
        evaluate_predictor, PatternMiner, PlaceGraph, PredictorKind, UserPatterns,
    };
    pub use crowdweb_prep::{
        ActivityFilter, LabelScheme, Prepared, Preprocessor, SeqItem, StudyWindow, TimeSlotting,
    };
    pub use crowdweb_seqmine::{Gsp, ModifiedPrefixSpan, Pattern, PatternSet, PrefixSpan};
    pub use crowdweb_server::{AppState, Server};
    pub use crowdweb_synth::SynthConfig;
}
