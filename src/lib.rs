//! # CrowdWeb
//!
//! A from-scratch Rust implementation of **CrowdWeb** (ICDCS 2023): a
//! platform that detects individual human mobility patterns from sparse
//! geotagged check-ins with a modified PrefixSpan over abstracted
//! places, then synchronizes and aggregates them into city-scale crowd
//! views over time windows.
//!
//! This facade crate re-exports every subsystem:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`geo`] | `crowdweb-geo` | coordinates, microcell grids, tiles, clustering |
//! | [`dataset`] | `crowdweb-dataset` | GTSM data model, TSV I/O, statistics |
//! | [`synth`] | `crowdweb-synth` | calibrated synthetic Foursquare-NYC generator |
//! | [`prep`] | `crowdweb-prep` | window/filter/discretize/label/sequence pipeline |
//! | [`seqmine`] | `crowdweb-seqmine` | PrefixSpan, modified PrefixSpan, GSP |
//! | [`mobility`] | `crowdweb-mobility` | per-user patterns, place graphs, prediction |
//! | [`crowd`] | `crowdweb-crowd` | crowd synchronization, aggregation, animation |
//! | [`viz`] | `crowdweb-viz` | SVG charts/maps, GeoJSON export |
//! | [`server`] | `crowdweb-server` | the web platform (HTTP API + front-end) |
//! | [`analytics`] | `crowdweb-analytics` | per-figure experiment harness |
//!
//! # Quickstart
//!
//! ```
//! use crowdweb::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Data (synthetic stand-in for the Foursquare NYC dataset).
//! let dataset = SynthConfig::small(7).generate()?;
//! // 2. Preprocess: richest window, active users, 2h slots, kind labels.
//! let prepared = Preprocessor::new().min_active_days(20).prepare(&dataset)?;
//! // 3. Mine individual mobility patterns.
//! let patterns = PatternMiner::new(0.15)?.detect_all(&prepared)?;
//! // 4. Synchronize and aggregate the crowd.
//! let grid = MicrocellGrid::new(BoundingBox::NYC, 20, 20)?;
//! let model = CrowdBuilder::new(&dataset, &prepared).build(&patterns, grid)?;
//! let snapshot = model.snapshot_at_hour(9).expect("hourly windows");
//! println!("9-10 am crowd: {} users", snapshot.total_users());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use crowdweb_analytics as analytics;
pub use crowdweb_crowd as crowd;
pub use crowdweb_dataset as dataset;
pub use crowdweb_geo as geo;
pub use crowdweb_mobility as mobility;
pub use crowdweb_prep as prep;
pub use crowdweb_seqmine as seqmine;
pub use crowdweb_server as server;
pub use crowdweb_synth as synth;
pub use crowdweb_viz as viz;

/// The most common imports in one place.
pub mod prelude {
    pub use crowdweb_crowd::{CrowdBuilder, CrowdModel, CrowdSnapshot, TimeWindow, TimeWindows};
    pub use crowdweb_dataset::{
        CheckIn, Dataset, DatasetStats, Taxonomy, Timestamp, UserId, Venue, VenueId,
    };
    pub use crowdweb_geo::{BoundingBox, CellId, LatLon, MicrocellGrid};
    pub use crowdweb_mobility::{
        evaluate_predictor, PatternMiner, PlaceGraph, PredictorKind, UserPatterns,
    };
    pub use crowdweb_prep::{
        ActivityFilter, LabelScheme, Prepared, Preprocessor, SeqItem, StudyWindow, TimeSlotting,
    };
    pub use crowdweb_seqmine::{Gsp, ModifiedPrefixSpan, Pattern, PatternSet, PrefixSpan};
    pub use crowdweb_server::{AppState, Server};
    pub use crowdweb_synth::SynthConfig;
}
